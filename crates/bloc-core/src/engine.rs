//! The fast likelihood engine: phasor-recurrence kernels, SoA channel
//! layout, geometry caching and parallel grid evaluation.
//!
//! Everything the localizer does reduces to evaluating Eq. 17,
//! `P_i(x) = |Σ_j Σ_k α^{f_k}_ij · e^{ι2πf_k Δ_ij(x)/c}|`, over a dense
//! 2-D grid. The naive evaluation (kept verbatim as [`ReferenceKernel`])
//! pays one `sin`+`cos` per (cell × antenna × band). This module layers
//! three optimizations on top, each independently verified against the
//! reference (see `tests/kernel_equivalence.rs`):
//!
//! 1. **Phasor recurrence**: BLE's data channels sit on a uniform 2 MHz
//!    comb, so `f_k = f_base + n_k·s` with integer `n_k`, and
//!    `e^{ι2πf_kΔ/c} = e^{ι2πf_baseΔ/c} · (e^{ι2πsΔ/c})^{n_k}` —
//!    two `cis` calls per (cell, antenna) seed a complex-rotation
//!    recurrence across all bands. The identity is *exact* (no small-angle
//!    approximation); [`BandPlan`] detects the comb and the kernel falls
//!    back to per-band `cis` when surviving bands don't sit on one. The
//!    recurrence itself lives in [`bloc_num::sweep`] — one SIMD
//!    implementation shared with the channel synthesizer — and
//!    [`RecurrenceKernel`] is the thin adapter that feeds it.
//! 2. **SoA layout + geometry cache**: [`SoaChannels`] re-packs the
//!    per-band `alpha[i][j]` tensor into the kernel's split re/im
//!    lane-padded layout, and [`SteeringCache`] memoizes the per-cell
//!    relative distances `Δ_ij(x)` (Eq. 14) and their seed/step phasors
//!    keyed by (grid, anchor geometry) — a deployment sounds thousands of
//!    times against the same grid, and the geometry never changes.
//! 3. **Coarse parallelism**: the joint likelihood fans out across
//!    *anchors* and single-anchor maps across row *chunks*, both through
//!    [`bloc_num::par`] with work-size thresholding
//!    ([`bloc_num::par::tuned_threads`]) so small problems never pay
//!    spawn overhead — bit-identically for every thread count.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use bloc_chan::AnchorArray;
use bloc_num::constants::SPEED_OF_LIGHT;
use bloc_num::sweep::{self, CellSweep, Combine, OffCombSweep};
use bloc_num::{Grid2D, GridSpec, C64, P2};

use crate::correction::CorrectedChannels;
use crate::likelihood::AntennaCombining;

/// The frequency walk a recurrence kernel takes across surviving bands —
/// now the workspace-wide [`bloc_num::sweep::CombPlan`]; the alias keeps
/// the engine's public vocabulary (`order` indexes
/// `CorrectedChannels::bands`).
pub use bloc_num::sweep::CombPlan as BandPlan;

/// Rounds an antenna count up to the kernel's 4-wide lane stride.
#[inline]
fn lane_stride(n_antennas: usize) -> usize {
    n_antennas.div_ceil(4).max(1) * 4
}

fn combine_of(combining: AntennaCombining) -> Combine {
    match combining {
        AntennaCombining::Coherent => Combine::Coherent,
        AntennaCombining::NoncoherentAntennas => Combine::Noncoherent,
        AntennaCombining::Hybrid => Combine::Hybrid,
    }
}

/// Corrected channels re-packed for the sweep kernel: per anchor, split
/// re/im row-major tensors padded to the 4-wide lane stride
/// (`alpha_re[i][row·n_lanes[i] + j]`, padding lanes exactly zero so
/// they contribute nothing). All antennas of a row sit adjacent, so the
/// kernel advances every antenna's rotation chain in lockstep — one SIMD
/// lane per antenna.
///
/// On a uniform comb whose occupied slots nearly fill its span (the BLE
/// data comb: 37 bands over 38 slots, one hole at the skipped
/// advertising channel), rows are laid out per **absolute comb slot**
/// with all-zero rows at the holes. The zero rows cost one multiply-add
/// each but let the kernel walk a gapless comb, which engages its
/// two-chain dense recurrence — worth far more than the holes cost.
/// Sparse survivor sets (heavy dropout) and off-comb bands keep the
/// compact planned-order layout.
#[derive(Debug, Clone)]
pub struct SoaChannels {
    /// The band walk shared by every slice.
    pub plan: BandPlan,
    /// Antennas per anchor.
    pub n_antennas: Vec<usize>,
    /// Lane stride per anchor (`n_antennas` rounded up to 4).
    n_lanes: Vec<usize>,
    /// `alpha_re[i][row·n_lanes[i] + j]` — row-major per anchor.
    alpha_re: Vec<Vec<f64>>,
    /// Imaginary parts, same indexing.
    alpha_im: Vec<Vec<f64>>,
    /// True when alpha rows are absolute comb slots (holes zero-filled)
    /// rather than planned-band order.
    slot_rows: bool,
    /// The slot advances handed to the kernel — `[0, 1, 1, …]` over the
    /// span under slot layout, [`CombPlan::gaps`] otherwise.
    kernel_gaps: Vec<u32>,
    /// Scratch for the band frequencies handed to the planner.
    freqs_scratch: Vec<f64>,
}

impl SoaChannels {
    /// An empty re-pack, ready for [`SoaChannels::rebuild`] — what the
    /// engine's scratch arena holds between calls.
    pub fn empty() -> Self {
        Self {
            plan: BandPlan::build(&[]),
            n_antennas: Vec::new(),
            n_lanes: Vec::new(),
            alpha_re: Vec::new(),
            alpha_im: Vec::new(),
            slot_rows: false,
            kernel_gaps: Vec::new(),
            freqs_scratch: Vec::new(),
        }
    }

    /// Re-packs `corrected` (masked entries stay exact zeros, so they
    /// still contribute nothing to the correlation sums).
    pub fn build(corrected: &CorrectedChannels) -> Self {
        let mut soa = Self::empty();
        soa.rebuild(corrected);
        soa
    }

    /// [`SoaChannels::build`] into `self`, reusing the tensor buffers —
    /// the warm-path entry: after the first sounding of a deployment no
    /// per-call tensor allocation remains.
    pub fn rebuild(&mut self, corrected: &CorrectedChannels) {
        self.freqs_scratch.clear();
        self.freqs_scratch
            .extend(corrected.bands.iter().map(|b| b.freq_hz));
        self.plan = BandPlan::build(&self.freqs_scratch);
        let nb = corrected.bands.len();
        let n = corrected.n_anchors();
        self.n_antennas.clear();
        self.n_antennas
            .extend(corrected.anchors.iter().map(|a| a.n_antennas));
        self.n_lanes.clear();
        self.n_lanes
            .extend(self.n_antennas.iter().map(|&nj| lane_stride(nj)));
        // Slot layout pays one zero row per comb hole; cap the overhead
        // at 25% extra rows before falling back to the compact walk.
        let span = self.plan.span();
        self.slot_rows = self.plan.is_uniform_comb() && span <= nb + nb / 4;
        let rows = if self.slot_rows { span } else { nb };
        self.kernel_gaps.clear();
        if self.slot_rows {
            self.kernel_gaps.extend((0..rows).map(|r| u32::from(r > 0)));
        } else {
            self.kernel_gaps.extend_from_slice(&self.plan.gaps);
        }
        self.alpha_re.resize_with(n, Vec::new);
        self.alpha_im.resize_with(n, Vec::new);
        for i in 0..n {
            let nj = self.n_antennas[i];
            let nl = self.n_lanes[i];
            let re = &mut self.alpha_re[i];
            let im = &mut self.alpha_im[i];
            re.clear();
            re.resize(rows * nl, 0.0);
            im.clear();
            im.resize(rows * nl, 0.0);
            for (k, &b) in self.plan.order.iter().enumerate() {
                let row = if self.slot_rows {
                    self.plan.slots[k] as usize
                } else {
                    k
                } * nl;
                for j in 0..nj {
                    let a = corrected.bands[b].alpha[i][j];
                    re[row + j] = a.re;
                    im[row + j] = a.im;
                }
            }
        }
    }

    /// The alpha tensor row holding planned band `k`.
    fn alpha_row(&self, k: usize) -> usize {
        if self.slot_rows {
            self.plan.slots[k] as usize
        } else {
            k
        }
    }

    /// Number of planned bands.
    pub fn n_bands(&self) -> usize {
        self.plan.freqs.len()
    }

    /// The antennas of anchor `i` at planned band `slot`, re-assembled
    /// from the split layout (a copy — layout inspection, not a hot
    /// path).
    pub fn band_antennas(&self, i: usize, slot: usize) -> Vec<C64> {
        let nj = self.n_antennas[i];
        let nl = self.n_lanes[i];
        let row = self.alpha_row(slot) * nl;
        (0..nj)
            .map(|j| C64::new(self.alpha_re[i][row + j], self.alpha_im[i][row + j]))
            .collect()
    }
}

/// Precomputed per-cell steering geometry for one (grid, deployment,
/// band-comb) triple: the relative distances
/// `Δ_ij(x) = d_ij(x) − d_00(x) − d^{i0}_{00}` of Eq. 14 for every cell
/// and every (anchor, antenna), plus — when the surviving bands form a
/// uniform comb — the two phasors the recurrence kernel seeds from them,
/// `e^{ι2πf_baseΔ/c}` and `e^{ι2πsΔ/c}`. Hoisting the phasors into the
/// cache removes every transcendental call from the steady-state
/// per-sounding path: the warm kernel is pure complex multiply-adds.
#[derive(Debug)]
pub struct SteeringTables {
    spec: GridSpec,
    /// `delta[i][cell·n_lanes[i] + j]`, cell-major, lane-padded with 0.
    delta: Vec<Vec<f64>>,
    /// `e^{ι2πf_baseΔ/c}` real parts, same indexing; padding lanes hold
    /// the neutral phasor `1 + 0ι` (finite, so a zero alpha annihilates
    /// it exactly — garbage here could produce `0 × ∞ = NaN`).
    seed_re: Vec<Vec<f64>>,
    /// Seed imaginary parts.
    seed_im: Vec<Vec<f64>>,
    /// `e^{ι2πsΔ/c}` (comb-step rotation) real parts, same indexing.
    step_re: Vec<Vec<f64>>,
    /// Step imaginary parts.
    step_im: Vec<Vec<f64>>,
    n_antennas: Vec<usize>,
    n_lanes: Vec<usize>,
}

impl SteeringTables {
    /// Computes the tables — the one place per deployment that pays the
    /// per-cell distance arithmetic and phasor seeding. `base_hz` and
    /// `step_hz` are the [`BandPlan`] comb parameters (0 disables the
    /// phasor tables' usefulness but is still a valid build).
    pub fn build(
        spec: GridSpec,
        anchors: &[AnchorArray],
        master_anchor_dist: &[f64],
        base_hz: f64,
        step_hz: f64,
    ) -> Self {
        let n_cells = spec.len();
        let n_antennas: Vec<usize> = anchors.iter().map(|a| a.n_antennas).collect();
        let n_lanes: Vec<usize> = n_antennas.iter().map(|&nj| lane_stride(nj)).collect();
        let master0 = anchors
            .first()
            .map(|a| a.antenna(0))
            .unwrap_or(P2::new(0.0, 0.0));
        let tau_over_c = std::f64::consts::TAU / SPEED_OF_LIGHT;
        let mut delta = Vec::with_capacity(anchors.len());
        let mut seed_re = Vec::with_capacity(anchors.len());
        let mut seed_im = Vec::with_capacity(anchors.len());
        let mut step_re = Vec::with_capacity(anchors.len());
        let mut step_im = Vec::with_capacity(anchors.len());
        for (i, anchor) in anchors.iter().enumerate() {
            let positions = anchor.antennas();
            let d_i0 = master_anchor_dist[i];
            let nl = n_lanes[i];
            let mut d_table = vec![0.0; n_cells * nl];
            let mut sre = vec![1.0; n_cells * nl];
            let mut sim = vec![0.0; n_cells * nl];
            let mut rre = vec![1.0; n_cells * nl];
            let mut rim = vec![0.0; n_cells * nl];
            for iy in 0..spec.ny {
                for ix in 0..spec.nx {
                    let x = spec.cell_center(ix, iy);
                    let d_00 = x.dist(master0);
                    let cell = spec.flat(ix, iy);
                    for (j, &p) in positions.iter().enumerate() {
                        let d = x.dist(p) - d_00 - d_i0;
                        let w = tau_over_c * d;
                        let k = cell * nl + j;
                        d_table[k] = d;
                        let s = C64::cis(w * base_hz);
                        let r = C64::cis(w * step_hz);
                        sre[k] = s.re;
                        sim[k] = s.im;
                        rre[k] = r.re;
                        rim[k] = r.im;
                    }
                }
            }
            delta.push(d_table);
            seed_re.push(sre);
            seed_im.push(sim);
            step_re.push(rre);
            step_im.push(rim);
        }
        Self {
            spec,
            delta,
            seed_re,
            seed_im,
            step_re,
            step_im,
            n_antennas,
            n_lanes,
        }
    }

    /// The grid the tables were built for.
    pub fn spec(&self) -> GridSpec {
        self.spec
    }

    /// Approximate heap footprint of the tables (the payload vectors; the
    /// struct header is noise next to them). Feeds the
    /// `cache.steering.resident_bytes` gauge.
    pub fn approx_bytes(&self) -> usize {
        self.delta
            .iter()
            .chain(&self.seed_re)
            .chain(&self.seed_im)
            .chain(&self.step_re)
            .chain(&self.step_im)
            .map(|v| v.len() * 8)
            .sum()
    }

    /// The `Δ_ij` slice of one cell for anchor `i` (length = antennas of
    /// `i`, indexed by `j` — padding lanes excluded).
    #[inline]
    pub fn cell_deltas(&self, i: usize, cell: usize) -> &[f64] {
        let nl = self.n_lanes[i];
        &self.delta[i][cell * nl..cell * nl + self.n_antennas[i]]
    }

    /// The kernel-ready sweep view of anchor `i`: the cached phasor
    /// tables zipped with `soa`'s matching alpha tensor.
    fn cell_sweep<'a>(&'a self, soa: &'a SoaChannels, i: usize) -> CellSweep<'a> {
        debug_assert_eq!(self.n_lanes[i], soa.n_lanes[i]);
        CellSweep {
            seed_re: &self.seed_re[i],
            seed_im: &self.seed_im[i],
            step_re: &self.step_re[i],
            step_im: &self.step_im[i],
            alpha_re: &soa.alpha_re[i],
            alpha_im: &soa.alpha_im[i],
            n_lanes: self.n_lanes[i],
            gaps: &soa.kernel_gaps,
        }
    }

    /// The off-comb fallback view of anchor `i`.
    fn offcomb_sweep<'a>(&'a self, soa: &'a SoaChannels, i: usize) -> OffCombSweep<'a> {
        debug_assert_eq!(self.n_lanes[i], soa.n_lanes[i]);
        OffCombSweep {
            delta: &self.delta[i],
            alpha_re: &soa.alpha_re[i],
            alpha_im: &soa.alpha_im[i],
            n_lanes: self.n_lanes[i],
            freqs: &soa.plan.freqs,
            phase_per_hz: std::f64::consts::TAU / SPEED_OF_LIGHT,
        }
    }
}

/// A concurrency-safe memo of [`SteeringTables`] keyed by (grid spec,
/// anchor geometry, master-anchor distances). Clones share the underlying
/// map, so a localizer cloned across sweep workers computes each
/// deployment's geometry exactly once.
///
/// Telemetry follows the workspace cache convention
/// ([`bloc_obs::CacheStats`]): `cache.steering.{hits,misses,
/// invalidations,invalidations.<cause>,evicted}` counters plus
/// `cache.steering.resident_{entries,bytes}` gauges.
#[derive(Debug, Clone)]
pub struct SteeringCache {
    inner: Arc<Mutex<CacheInner>>,
    stats: bloc_obs::CacheStats,
}

/// One resident steering geometry plus the bookkeeping the LRU budget
/// needs: its payload size and the last access tick.
#[derive(Debug)]
struct CacheEntry {
    tables: Arc<SteeringTables>,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<Vec<u64>, CacheEntry>,
    /// Monotone access clock; bumped on every lookup so eviction can
    /// order entries by recency without timestamps.
    tick: u64,
    /// Resident-byte ceiling; `None` (the default) never evicts.
    byte_budget: Option<usize>,
}

impl Default for SteeringCache {
    fn default() -> Self {
        Self {
            inner: Arc::default(),
            stats: bloc_obs::CacheStats::global("steering"),
        }
    }
}

fn push_f64(key: &mut Vec<u64>, v: f64) {
    key.push(v.to_bits());
}

fn cache_key(
    spec: GridSpec,
    anchors: &[AnchorArray],
    master_anchor_dist: &[f64],
    base_hz: f64,
    step_hz: f64,
) -> Vec<u64> {
    let mut key = Vec::with_capacity(8 + anchors.len() * 7 + master_anchor_dist.len());
    push_f64(&mut key, base_hz);
    push_f64(&mut key, step_hz);
    push_f64(&mut key, spec.origin.x);
    push_f64(&mut key, spec.origin.y);
    push_f64(&mut key, spec.resolution);
    key.push(spec.nx as u64);
    key.push(spec.ny as u64);
    key.extend_from_slice(&anchor_fingerprint(anchors));
    for &d in master_anchor_dist {
        push_f64(&mut key, d);
    }
    key
}

/// Offset of the anchor-geometry segment inside a cache key (after the
/// two comb frequencies and the five grid-spec words).
const KEY_ANCHOR_OFFSET: usize = 7;

/// The anchor-geometry words of a cache key: 6 per anchor, exactly as
/// [`cache_key`] lays them out. [`SteeringCache::invalidate_geometry`]
/// matches cached entries on this segment.
fn anchor_fingerprint(anchors: &[AnchorArray]) -> Vec<u64> {
    let mut fp = Vec::with_capacity(anchors.len() * 6);
    for a in anchors {
        push_f64(&mut fp, a.origin.x);
        push_f64(&mut fp, a.origin.y);
        push_f64(&mut fp, a.axis.x);
        push_f64(&mut fp, a.axis.y);
        push_f64(&mut fp, a.spacing);
        fp.push(a.n_antennas as u64);
    }
    fp
}

impl SteeringCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tables for this (grid, deployment, comb), computed on first
    /// use. Concurrent callers for the same key block on the build rather
    /// than duplicating it.
    pub fn tables(
        &self,
        spec: GridSpec,
        anchors: &[AnchorArray],
        master_anchor_dist: &[f64],
        base_hz: f64,
        step_hz: f64,
    ) -> Arc<SteeringTables> {
        let key = cache_key(spec, anchors, master_anchor_dist, base_hz, step_hz);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(hit) = inner.map.get_mut(&key) {
            hit.last_used = tick;
            self.stats.hit();
            return Arc::clone(&hit.tables);
        }
        self.stats.miss();
        let built = Arc::new(SteeringTables::build(
            spec,
            anchors,
            master_anchor_dist,
            base_hz,
            step_hz,
        ));
        let bytes = built.approx_bytes();
        inner.map.insert(
            key.clone(),
            CacheEntry {
                tables: Arc::clone(&built),
                bytes,
                last_used: tick,
            },
        );
        self.enforce_budget(&mut inner, &key);
        self.publish_residency(&inner);
        built
    }

    /// Evicts least-recently-used entries until resident bytes fit the
    /// budget. The entry just inserted (`keep`) is never evicted — a
    /// single over-budget geometry stays resident so the current caller
    /// can still be served from cache; it becomes an eviction candidate
    /// on the next insert. Evictions are reported as invalidations with
    /// cause `capacity`.
    fn enforce_budget(&self, inner: &mut CacheInner, keep: &[u64]) {
        let Some(budget) = inner.byte_budget else {
            return;
        };
        let mut resident: usize = inner.map.values().map(|e| e.bytes).sum();
        let mut evicted = 0usize;
        while resident > budget && inner.map.len() > 1 {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| k.as_slice() != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(entry) = inner.map.remove(&victim) {
                resident -= entry.bytes;
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.stats.invalidated("capacity", evicted);
        }
    }

    /// Pushes the current entry/byte residency to the gauges; callers
    /// hold the map lock.
    fn publish_residency(&self, inner: &CacheInner) {
        let bytes: usize = inner.map.values().map(|e| e.bytes).sum();
        self.stats.resident(inner.map.len(), bytes);
    }

    /// Caps resident steering payload bytes; `None` (the default) never
    /// evicts. Applies to every clone sharing this cache. With a budget
    /// set, each insert evicts least-recently-used geometries until the
    /// total fits (cause `capacity` in the telemetry), keeping venue-scale
    /// coarse+patch working sets bounded across fleet sites.
    pub fn set_byte_budget(&self, budget: Option<usize>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.byte_budget = budget;
    }

    /// The configured resident-byte ceiling, if any.
    pub fn byte_budget(&self) -> Option<usize> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .byte_budget
    }

    /// Drops every cached deployment built for exactly this anchor
    /// geometry, returning how many entries were removed. The runtime
    /// supervisor calls this when an anchor is quarantined or
    /// re-admitted (and benches call it on a physical geometry swap), so
    /// the engine never serves steering tables for an anchor set that is
    /// no longer the one being localized against. Entries for *other*
    /// anchor subsets — including the new admitted set — are untouched.
    pub fn invalidate_geometry(&self, anchors: &[AnchorArray]) -> usize {
        self.invalidate_geometry_with_cause(anchors, "geometry")
    }

    /// [`SteeringCache::invalidate_geometry`] with the invalidation
    /// attributed to `cause` in `cache.steering.invalidations.<cause>`
    /// (the runtime supervisor passes `breaker`; benches on a physical
    /// geometry swap keep the default `geometry`).
    pub fn invalidate_geometry_with_cause(
        &self,
        anchors: &[AnchorArray],
        cause: &'static str,
    ) -> usize {
        let fp = anchor_fingerprint(anchors);
        // Every key for an n-anchor deployment has 7 + 6n + n words
        // (master distances trail the geometry), so length + segment
        // equality is an exact match, not a prefix heuristic.
        let expect_len = KEY_ANCHOR_OFFSET + fp.len() + anchors.len();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let before = inner.map.len();
        inner.map.retain(|key, _| {
            key.len() != expect_len
                || key[KEY_ANCHOR_OFFSET..KEY_ANCHOR_OFFSET + fp.len()] != fp[..]
        });
        let removed = before - inner.map.len();
        self.stats.invalidated(cause, removed);
        self.publish_residency(&inner);
        removed
    }

    /// Number of cached deployments.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Everything a kernel needs to evaluate one anchor map. The reference
/// kernel reads `corrected` directly; the fast kernels read the SoA and
/// steering layers.
pub struct KernelInputs<'a> {
    /// The corrected channels as produced by [`crate::correction`].
    pub corrected: &'a CorrectedChannels,
    /// The SoA re-pack of the same channels.
    pub soa: &'a SoaChannels,
    /// The per-cell steering geometry.
    pub tables: &'a SteeringTables,
}

/// One interchangeable implementation of the Eq. 17 per-anchor map.
pub trait LikelihoodKernel: Send + Sync + std::fmt::Debug {
    /// A short name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Evaluates anchor `i`'s likelihood map over `inputs.tables.spec()`,
    /// splitting rows across `threads`.
    fn anchor_map(
        &self,
        inputs: &KernelInputs<'_>,
        i: usize,
        combining: AntennaCombining,
        threads: usize,
    ) -> Grid2D;
}

/// The naive per-cell evaluation the workspace started with — one
/// `cis` per (cell, antenna, band), distances recomputed per cell. Kept
/// as ground truth for the equivalence suite and the perf baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceKernel;

impl LikelihoodKernel for ReferenceKernel {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn anchor_map(
        &self,
        inputs: &KernelInputs<'_>,
        i: usize,
        combining: AntennaCombining,
        threads: usize,
    ) -> Grid2D {
        let corrected = inputs.corrected;
        let spec = inputs.tables.spec();
        Grid2D::from_fn_par(spec, threads, |x| {
            crate::likelihood::reference_cell_value(corrected, i, combining, x)
        })
    }
}

/// The phasor-recurrence kernel: a thin adapter over
/// [`bloc_num::sweep::write_comb_cells`]. Per (cell, antenna) the cached
/// steering tables hold `e^{ι2πf_baseΔ/c}` and the comb rotation
/// `e^{ι2πsΔ/c}`; the shared SIMD kernel advances every antenna's chain
/// in 4-wide lanes across bands by complex multiplication. Off-comb band
/// sets fall back to per-band `cis` ([`sweep::write_offcomb_cells`]) with
/// identical combining semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecurrenceKernel;

/// Minimum cells per shard before an anchor map fans out: one cell costs
/// ~150 ns warm, so this keeps each spawn amortized to well under a
/// percent.
const MIN_CELLS_PER_SHARD: usize = 4096;

impl LikelihoodKernel for RecurrenceKernel {
    fn name(&self) -> &'static str {
        "recurrence"
    }

    fn anchor_map(
        &self,
        inputs: &KernelInputs<'_>,
        i: usize,
        combining: AntennaCombining,
        threads: usize,
    ) -> Grid2D {
        let soa = inputs.soa;
        let tables = inputs.tables;
        let spec = tables.spec();
        let uniform = soa.plan.is_uniform_comb();
        let combine = combine_of(combining);

        let mut out = Grid2D::zeros(spec);
        let n_cells = out.data().len();
        let nx = spec.nx.max(1);
        let threads = bloc_num::par::tuned_threads(n_cells, threads, MIN_CELLS_PER_SHARD);
        let chunk = bloc_num::par::auto_chunk_len(n_cells, nx, threads);
        bloc_num::par::for_each_chunk_mut_named(
            "likelihood",
            out.data_mut(),
            chunk,
            threads,
            |start, row| {
                if uniform {
                    // The cached seed/step phasors make this branch free
                    // of transcendentals: pure complex multiply-adds.
                    sweep::write_comb_cells(&tables.cell_sweep(soa, i), combine, start, row);
                } else {
                    sweep::write_offcomb_cells(&tables.offcomb_sweep(soa, i), combine, start, row);
                }
            },
        );
        out
    }
}

/// The assembled engine: a kernel choice, a thread count, and a shared
/// [`SteeringCache`]. Cloning shares the cache (and the kernel), so a
/// localizer cloned per worker still computes each deployment's geometry
/// once.
#[derive(Debug, Clone)]
pub struct LikelihoodEngine {
    kernel: Arc<dyn LikelihoodKernel>,
    threads: usize,
    cache: SteeringCache,
    /// Warm-path scratch: the SoA re-pack of the previous call, reused so
    /// steady-state soundings allocate no channel tensors. Shared (like
    /// the cache) across clones; `take`/`put` keeps the lock out of the
    /// compute, and a concurrent second caller simply builds fresh.
    soa_arena: Arc<Mutex<Option<Box<SoaChannels>>>>,
}

impl Default for LikelihoodEngine {
    /// Recurrence kernel, single-threaded: the fastest configuration that
    /// composes safely with callers that already parallelize across
    /// soundings (the sweep runner, the ablations).
    fn default() -> Self {
        Self::recurrence()
    }
}

impl LikelihoodEngine {
    /// A single-threaded engine on the phasor-recurrence kernel.
    pub fn recurrence() -> Self {
        Self {
            kernel: Arc::new(RecurrenceKernel),
            threads: 1,
            cache: SteeringCache::new(),
            soa_arena: Arc::default(),
        }
    }

    /// A single-threaded engine on the naive reference kernel.
    pub fn reference() -> Self {
        Self {
            kernel: Arc::new(ReferenceKernel),
            threads: 1,
            cache: SteeringCache::new(),
            soa_arena: Arc::default(),
        }
    }

    /// Takes the arena's SoA scratch (or a fresh one) rebuilt for
    /// `corrected`.
    fn soa_for(&self, corrected: &CorrectedChannels) -> Box<SoaChannels> {
        let taken = self
            .soa_arena
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        let mut soa = taken.unwrap_or_else(|| Box::new(SoaChannels::empty()));
        soa.rebuild(corrected);
        soa
    }

    /// Returns SoA scratch to the arena for the next call.
    fn release_soa(&self, soa: Box<SoaChannels>) {
        *self.soa_arena.lock().unwrap_or_else(|e| e.into_inner()) = Some(soa);
    }

    /// Replaces the kernel.
    pub fn with_kernel(mut self, kernel: Arc<dyn LikelihoodKernel>) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets how many threads grid rows are split across (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The active kernel's name.
    pub fn kernel_name(&self) -> &'static str {
        self.kernel.name()
    }

    /// The shared steering cache (exposed for inspection/tests).
    pub fn cache(&self) -> &SteeringCache {
        &self.cache
    }

    /// Per-anchor likelihood map (Eq. 17 for anchor `i`) through the
    /// engine's kernel, cache and thread pool.
    pub fn anchor_likelihood(
        &self,
        corrected: &CorrectedChannels,
        i: usize,
        spec: GridSpec,
        combining: AntennaCombining,
    ) -> Grid2D {
        let soa = self.soa_for(corrected);
        let tables = self.cache.tables(
            spec,
            &corrected.anchors,
            &corrected.master_anchor_dist,
            soa.plan.base_hz,
            soa.plan.step_hz,
        );
        let inputs = KernelInputs {
            corrected,
            soa: &soa,
            tables: &tables,
        };
        let map = self.kernel.anchor_map(&inputs, i, combining, self.threads);
        self.release_soa(soa);
        bloc_obs::counter("engine.cells_evaluated").add(spec.len() as u64);
        map
    }

    /// The joint likelihood (per-anchor maps normalized, degradation-
    /// weighted, summed — see [`crate::likelihood::joint_likelihood`] for
    /// the weighting contract) with the SoA build and geometry lookup
    /// amortized across anchors.
    ///
    /// With more than one thread configured, parallelism fans out across
    /// *anchors* — whole independent maps, the coarsest unit available —
    /// rather than intra-map row shards: each worker computes one
    /// anchor's map serially, and the weighted sum then consumes them in
    /// anchor order, so the result stays bit-identical to the serial
    /// path.
    pub fn joint_likelihood(
        &self,
        corrected: &CorrectedChannels,
        spec: GridSpec,
        combining: AntennaCombining,
    ) -> Grid2D {
        let soa = self.soa_for(corrected);
        let tables = self.cache.tables(
            spec,
            &corrected.anchors,
            &corrected.master_anchor_dist,
            soa.plan.base_hz,
            soa.plan.step_hz,
        );
        let inputs = KernelInputs {
            corrected,
            soa: &soa,
            tables: &tables,
        };
        let n = corrected.n_anchors();
        // Only anchors with surviving evidence get maps (the weighting
        // skips the rest), and each map is a full grid of kernel work —
        // one item per shard is already coarse enough to pay for itself.
        let alive: Vec<usize> = (0..n)
            .filter(|&i| corrected.surviving_fraction(i) > 0.0)
            .collect();
        let anchor_threads = bloc_num::par::tuned_threads(alive.len(), self.threads, 1);
        let joint = if anchor_threads > 1 {
            let maps =
                bloc_num::par::map_named("likelihood.anchors", alive.len(), anchor_threads, |k| {
                    self.kernel.anchor_map(&inputs, alive[k], combining, 1)
                });
            let mut by_anchor: Vec<Option<Grid2D>> = (0..n).map(|_| None).collect();
            for (&i, map) in alive.iter().zip(maps) {
                by_anchor[i] = Some(map);
            }
            crate::likelihood::weighted_joint(corrected, spec, |i| {
                by_anchor[i]
                    .take()
                    .unwrap_or_else(|| self.kernel.anchor_map(&inputs, i, combining, 1))
            })
        } else {
            crate::likelihood::weighted_joint(corrected, spec, |i| {
                self.kernel.anchor_map(&inputs, i, combining, self.threads)
            })
        };
        self.release_soa(soa);
        // One kernel pass per alive anchor: the unit every dense-vs-
        // hierarchical reduction gate and per-round soak report counts.
        bloc_obs::counter("engine.cells_evaluated").add((spec.len() * alive.len()) as u64);
        joint
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn band_plan_detects_the_ble_comb() {
        // 2402, 2404, …: ascending 2 MHz comb.
        let freqs: Vec<f64> = (0..10).map(|k| 2.402e9 + 2e6 * k as f64).collect();
        let plan = BandPlan::build(&freqs);
        assert!(plan.is_uniform_comb());
        assert_eq!(plan.base_hz, 2.402e9);
        assert_eq!(plan.step_hz, 2e6);
        assert_eq!(plan.gaps[0], 0);
        assert!(plan.gaps[1..].iter().all(|&g| g == 1));
    }

    #[test]
    fn band_plan_sorts_and_handles_gaps() {
        // Shuffled order with a missing channel: gaps reflect the holes.
        let freqs = [2.410e9, 2.402e9, 2.416e9];
        let plan = BandPlan::build(&freqs);
        assert_eq!(plan.order, vec![1, 0, 2]);
        // Sorted gaps are 8 and 6 MHz: the candidate step is 6 MHz, which
        // does not divide 8 MHz, so no exact recurrence exists from these
        // gaps alone — BandPlan must fall back rather than mis-plan.
        assert!(!plan.is_uniform_comb());
        assert!(!BandPlan::build(&[2.402e9, 2.410e9, 2.416e9]).is_uniform_comb());
    }

    #[test]
    fn band_plan_uniform_with_adjacent_pair_present() {
        // As long as one adjacent pair exists, the 2 MHz step is found
        // and wider holes become multi-slot gaps.
        let freqs = [2.402e9, 2.404e9, 2.412e9];
        let plan = BandPlan::build(&freqs);
        assert!(plan.is_uniform_comb());
        assert_eq!(plan.gaps, vec![0, 1, 4]);
    }

    #[test]
    fn band_plan_degenerate_sizes() {
        assert!(!BandPlan::build(&[]).is_uniform_comb());
        let one = BandPlan::build(&[2.44e9]);
        assert!(!one.is_uniform_comb());
        assert_eq!(one.gaps, vec![0]);
        assert_eq!(one.base_hz, 2.44e9);
    }

    #[test]
    fn steering_cache_returns_the_same_tables() {
        let spec = GridSpec::covering(P2::new(0.0, 0.0), P2::new(2.0, 2.0), 0.5);
        let anchors = vec![
            AnchorArray::centered(0, P2::new(1.0, 0.0), P2::new(1.0, 0.0), 4),
            AnchorArray::centered(1, P2::new(0.0, 1.0), P2::new(0.0, 1.0), 4),
        ];
        let dists = vec![0.0, anchors[1].antenna(0).dist(anchors[0].antenna(0))];
        let (base, step) = (2.402e9, 2.0e6);
        let cache = SteeringCache::new();
        let a = cache.tables(spec, &anchors, &dists, base, step);
        let b = cache.tables(spec, &anchors, &dists, base, step);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(cache.len(), 1);

        // A different grid is a different deployment entry.
        let spec2 = GridSpec::covering(P2::new(0.0, 0.0), P2::new(2.0, 2.0), 0.25);
        let c = cache.tables(spec2, &anchors, &dists, base, step);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);

        // A different comb (phasor tables differ) is its own entry too.
        let e = cache.tables(spec, &anchors, &dists, base + 2.0e6, step);
        assert!(!Arc::ptr_eq(&a, &e));
        assert_eq!(cache.len(), 3);

        // Clones share the map.
        let clone = cache.clone();
        let d = clone.tables(spec, &anchors, &dists, base, step);
        assert!(Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn steering_cache_byte_budget_evicts_lru() {
        let anchors = vec![
            AnchorArray::centered(0, P2::new(1.0, 0.0), P2::new(1.0, 0.0), 4),
            AnchorArray::centered(1, P2::new(0.0, 1.0), P2::new(0.0, 1.0), 4),
        ];
        let dists = vec![0.0, anchors[1].antenna(0).dist(anchors[0].antenna(0))];
        let (base, step) = (2.402e9, 2.0e6);
        let spec_at = |res: f64| GridSpec::covering(P2::new(0.0, 0.0), P2::new(2.0, 2.0), res);

        let cache = SteeringCache::new();
        assert_eq!(cache.byte_budget(), None);
        let a = cache.tables(spec_at(0.5), &anchors, &dists, base, step);
        let b = cache.tables(spec_at(0.4), &anchors, &dists, base, step);
        assert_eq!(cache.len(), 2);
        // Size the budget so `a` plus the upcoming 0.25 m entry fit, but
        // all three do not.
        let c_bytes =
            SteeringTables::build(spec_at(0.25), &anchors, &dists, base, step).approx_bytes();
        cache.set_byte_budget(Some(a.approx_bytes() + c_bytes));
        // Touch `a` so the 0.4 m entry is the least recently used, then
        // insert a third: `b` must be the eviction victim.
        let a2 = cache.tables(spec_at(0.5), &anchors, &dists, base, step);
        assert!(Arc::ptr_eq(&a, &a2));
        let _c = cache.tables(spec_at(0.25), &anchors, &dists, base, step);
        assert_eq!(cache.len(), 2);
        let b2 = cache.tables(spec_at(0.4), &anchors, &dists, base, step);
        assert!(
            !Arc::ptr_eq(&b, &b2),
            "evicted entry must be rebuilt, not served stale"
        );

        // A single entry larger than the budget stays resident: the cache
        // never evicts below one geometry.
        cache.set_byte_budget(Some(1));
        let big = cache.tables(spec_at(0.1), &anchors, &dists, base, step);
        assert_eq!(cache.len(), 1);
        let big2 = cache.tables(spec_at(0.1), &anchors, &dists, base, step);
        assert!(Arc::ptr_eq(&big, &big2));
    }

    #[test]
    fn steering_tables_match_direct_geometry() {
        let spec = GridSpec::covering(P2::new(-0.5, -0.5), P2::new(3.0, 3.0), 0.7);
        let anchors = vec![
            AnchorArray::centered(0, P2::new(1.0, -0.4), P2::new(1.0, 0.0), 3),
            AnchorArray::centered(1, P2::new(-0.4, 1.0), P2::new(0.0, 1.0), 4),
        ];
        let master0 = anchors[0].antenna(0);
        let dists = vec![0.0, anchors[1].antenna(0).dist(master0)];
        let (base, step) = (2.402e9, 2.0e6);
        let tables = SteeringTables::build(spec, &anchors, &dists, base, step);
        let tau_over_c = std::f64::consts::TAU / SPEED_OF_LIGHT;
        for iy in 0..spec.ny {
            for ix in 0..spec.nx {
                let x = spec.cell_center(ix, iy);
                let cell = spec.flat(ix, iy);
                for (i, a) in anchors.iter().enumerate() {
                    let ds = tables.cell_deltas(i, cell);
                    let nl = tables.n_lanes[i];
                    assert_eq!(ds.len(), a.n_antennas);
                    for (j, &d) in ds.iter().enumerate() {
                        let manual = x.dist(a.antenna(j)) - x.dist(master0) - dists[i];
                        assert_eq!(d, manual, "cell ({ix},{iy}) anchor {i} ant {j}");
                        let k = cell * nl + j;
                        let seed = C64::new(tables.seed_re[i][k], tables.seed_im[i][k]);
                        let rot = C64::new(tables.step_re[i][k], tables.step_im[i][k]);
                        assert_eq!(seed, C64::cis(tau_over_c * d * base));
                        assert_eq!(rot, C64::cis(tau_over_c * d * step));
                    }
                    // Padding lanes stay neutral: zero delta, unit phasor
                    // — a zero alpha annihilates them exactly.
                    for j in a.n_antennas..nl {
                        let k = cell * nl + j;
                        assert_eq!(tables.delta[i][k], 0.0);
                        assert_eq!(
                            C64::new(tables.seed_re[i][k], tables.seed_im[i][k]),
                            C64::new(1.0, 0.0)
                        );
                        assert_eq!(
                            C64::new(tables.step_re[i][k], tables.step_im[i][k]),
                            C64::new(1.0, 0.0)
                        );
                    }
                }
            }
        }
    }
}
