//! Phase-offset cancellation across anchors — paper §5.2, Eqs. 7–14 —
//! with degradation-aware masking.
//!
//! Every frequency hop leaves each device's oscillator at a random phase,
//! so the measured channels are `ĥ^f_ij = h^f_ij·e^{ι(φT−φRi)}` etc. BLoc's
//! insight: the slave anchors overhear *both* directions of the
//! master↔tag exchange, and the product
//!
//! `α^f_ij = ĥ^f_ij · Ĥ^{f*}_i0 · ĥ^{f*}_00`
//!
//! cancels every offset (Eq. 10) because
//! `(φT−φRi) − (φR0−φRi) − (φT−φR0) = 0`. Geometrically (Eq. 14) the
//! corrected channel's phase encodes the *relative* distance
//! `d^ij_T − d^00_T − d^{i0}_{00}`, where the last term (master-to-anchor
//! spacing) is known from deployment.
//!
//! The master anchor itself needs no inter-anchor correction: all its
//! antennas share one oscillator, so `α^f_0j = ĥ^f_0j · ĥ^{f*}_00` is
//! already offset-free with reference distance `d^00_T`.
//!
//! ## Masking lost measurements
//!
//! Eq. 10 needs all three measurements of a triple. Real deployments lose
//! packets (`bloc_chan::faults` injects exactly these losses as
//! exactly-zero measurements), and a zero factor would silently poison the
//! product — worse, a *normalized* zero would fabricate a unit-magnitude
//! phase out of nothing. [`correct`] therefore masks instead of computing:
//!
//! * `ĥ00 = 0` (master missed the tag packet) ⇒ the whole band is
//!   **dropped** — no alpha on any anchor can be formed for it.
//! * `Ĥ_i0 = 0` (slave `i` missed the master response) ⇒ anchor `i`'s
//!   row is masked for that band.
//! * `ĥ_ij = 0` (a lost tag packet or dead antenna) ⇒ that entry is
//!   masked.
//! * Non-finite measurements are masked the same way and tallied
//!   separately.
//!
//! Masked entries are stored as **exact zeros**: a zero term contributes
//! nothing to the coherent sums of Eq. 17, so the likelihood stage
//! degrades gracefully for free, and [`CorrectedChannels::surviving`]
//! records how much evidence each anchor still carries so the joint
//! likelihood can weight anchors accordingly. The [`MaskingSummary`]
//! reports every masked hole; the `fault_soak` binary reconciles its
//! totals against the injected-fault census.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use bloc_chan::sounder::{BandSounding, SoundingData};
use bloc_chan::AnchorArray;
use bloc_num::{C64, P2};

use crate::error::LocalizeError;

/// Corrected channels for one frequency band.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CorrectedBand {
    /// Band centre frequency, hertz.
    pub freq_hz: f64,
    /// `alpha[i][j]` = corrected channel `α^f_ij`. Masked entries are
    /// exact zeros.
    pub alpha: Vec<Vec<C64>>,
}

/// What the masking pass discarded while correcting one sounding.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MaskingSummary {
    /// Bands in the input sounding.
    pub bands_total: usize,
    /// Bands dropped entirely (missing/non-finite `ĥ00`, or malformed
    /// shape).
    pub bands_dropped: usize,
    /// Exactly-zero input measurements absorbed (lost tag packets plus
    /// lost master responses) — reconciles with
    /// `bloc_chan::FaultCensus::holes`.
    pub holes_masked: usize,
    /// Non-finite input measurements absorbed.
    pub nonfinite_masked: usize,
    /// Frequency span (hertz) of the bands that survived — the effective
    /// stitched bandwidth of §5.1 after degradation.
    pub effective_span_hz: f64,
}

/// The full corrected-channel tensor plus the geometry needed to interpret
/// it.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CorrectedChannels {
    /// Per-band corrected channels for the bands that survived masking,
    /// in sounding order.
    pub bands: Vec<CorrectedBand>,
    /// Anchor geometry (anchor 0 is the master).
    pub anchors: Vec<AnchorArray>,
    /// `d^{i0}_{00}`: distance from master antenna 0 to anchor *i* antenna
    /// 0, measured once at deployment (paper §5.3: "a fixed distance known
    /// a priori"). Entry 0 is 0.
    pub master_anchor_dist: Vec<f64>,
    /// Per-anchor count of unmasked `(band, antenna)` alpha entries — the
    /// evidence each anchor still contributes. An anchor at 0 is dead and
    /// must be excluded from the joint likelihood.
    pub surviving: Vec<usize>,
    /// What masking discarded to produce this tensor.
    pub masking: MaskingSummary,
}

impl CorrectedChannels {
    /// Number of anchors.
    pub fn n_anchors(&self) -> usize {
        self.anchors.len()
    }

    /// Indices of anchors with at least one surviving measurement.
    pub fn usable_anchors(&self) -> Vec<usize> {
        (0..self.n_anchors())
            .filter(|&i| self.surviving[i] > 0)
            .collect()
    }

    /// The fraction of anchor `i`'s possible `(band, antenna)` entries
    /// that survived masking, in `[0, 1]` (1 when nothing was masked; 0
    /// for a dead anchor or when no band survived).
    pub fn surviving_fraction(&self, i: usize) -> f64 {
        let possible = self.bands.len() * self.anchors[i].n_antennas;
        if possible == 0 {
            0.0
        } else {
            self.surviving[i] as f64 / possible as f64
        }
    }

    /// The reference phase argument for anchor `i`, antenna `j`, at a
    /// hypothetical tag position `x`: the relative path length
    /// `Δ_ij(x) = d_ij(x) − d_00(x) − d^{i0}_{00}` whose phase
    /// `−2πfΔ/c` a corrected channel would carry if the tag were at `x`
    /// (Eq. 14).
    pub fn relative_distance(&self, i: usize, j: usize, x: P2) -> f64 {
        let d_ij = x.dist(self.anchors[i].antenna(j));
        let d_00 = x.dist(self.anchors[0].antenna(0));
        d_ij - d_00 - self.master_anchor_dist[i]
    }
}

/// A measurement is a hole when a packet never arrived: the sounder (and
/// `bloc_chan::faults`) materialize losses as exact zeros.
fn is_hole(h: C64) -> bool {
    h.norm_sq() == 0.0
}

fn is_nonfinite(h: C64) -> bool {
    !(h.re.is_finite() && h.im.is_finite())
}

/// Tallies every hole / non-finite measurement present in one raw band,
/// independent of whether its band survives — the injected/recovered
/// reconciliation counts *measurements*, not usable alphas.
fn tally_band(band: &BandSounding, summary: &mut MaskingSummary) {
    for h in band.tag_to_anchor.iter().flatten() {
        if is_hole(*h) {
            summary.holes_masked += 1;
        } else if is_nonfinite(*h) {
            summary.nonfinite_masked += 1;
        }
    }
    for h in band.master_to_anchor.iter().skip(1) {
        if is_hole(*h) {
            summary.holes_masked += 1;
        } else if is_nonfinite(*h) {
            summary.nonfinite_masked += 1;
        }
    }
}

/// Whether a band's measurement tensors have the shape the deployment
/// promises. Malformed bands are dropped, not panicked on — shape is a
/// property of (possibly corrupted) input data, not of our code.
fn band_shape_ok(band: &BandSounding, anchors: &[AnchorArray]) -> bool {
    band.tag_to_anchor.len() == anchors.len()
        && band.master_to_anchor.len() == anchors.len()
        && band
            .tag_to_anchor
            .iter()
            .zip(anchors)
            .all(|(row, a)| row.len() == a.n_antennas)
}

/// Applies BLoc's offset cancellation to a sounding, masking measurement
/// holes instead of propagating them.
///
/// When `normalize` is true each corrected channel is scaled to unit
/// magnitude: Eq. 17's correlation then weighs every (antenna, band)
/// observation equally instead of by the product of three link amplitudes.
/// The pipeline defaults to `true` (see `BlocConfig`); the raw Eq.-10 form
/// is available for ablation. Masked entries stay exact zeros either way.
///
/// # Errors
///
/// [`LocalizeError::EmptySounding`] when the sounding has no bands and
/// [`LocalizeError::NoAnchors`] when it has no anchors. A sounding whose
/// bands are all *dropped by masking* is still `Ok` — with empty
/// [`CorrectedChannels::bands`] and the full [`MaskingSummary`] — so
/// callers can report what was absorbed before refusing to localize.
pub fn correct(data: &SoundingData, normalize: bool) -> Result<CorrectedChannels, LocalizeError> {
    if data.anchors.is_empty() {
        return Err(LocalizeError::NoAnchors);
    }
    if data.bands.is_empty() {
        return Err(LocalizeError::EmptySounding);
    }
    let anchors = data.anchors.clone();
    let master0 = anchors[0].antenna(0);
    let master_anchor_dist: Vec<f64> = anchors.iter().map(|a| a.antenna(0).dist(master0)).collect();

    let mut summary = MaskingSummary {
        bands_total: data.bands.len(),
        ..Default::default()
    };
    let mut surviving = vec![0usize; anchors.len()];
    let mut bands = Vec::with_capacity(data.bands.len());

    for band in &data.bands {
        tally_band(band, &mut summary);
        if !band_shape_ok(band, &anchors) {
            summary.bands_dropped += 1;
            continue;
        }
        let h00 = band.tag_to_master0();
        if is_hole(h00) || is_nonfinite(h00) {
            // No tag measurement at the master: Eq. 10's ĥ₀₀* factor is
            // undefined for every anchor — the band carries no usable
            // relative-phase information at all.
            summary.bands_dropped += 1;
            continue;
        }

        let alpha: Vec<Vec<C64>> = band
            .tag_to_anchor
            .iter()
            .enumerate()
            .map(|(i, row)| {
                // A slave without the master response cannot cancel its
                // oscillator offset on any antenna.
                let master_link = if i == 0 {
                    None
                } else {
                    let m = band.master_to_anchor[i];
                    if is_hole(m) || is_nonfinite(m) {
                        return vec![bloc_num::complex::ZERO; row.len()];
                    }
                    Some(m)
                };
                row.iter()
                    .map(|&h_ij| {
                        if is_hole(h_ij) || is_nonfinite(h_ij) {
                            return bloc_num::complex::ZERO;
                        }
                        // Master (i = 0): within-anchor reference only.
                        // Slaves: the full three-term product of Eq. 10.
                        let a = match master_link {
                            None => h_ij * h00.conj(),
                            Some(m) => h_ij * m.conj() * h00.conj(),
                        };
                        if is_nonfinite(a) {
                            return bloc_num::complex::ZERO;
                        }
                        if normalize {
                            a.normalize()
                        } else {
                            a
                        }
                    })
                    .collect()
            })
            .collect();

        for (i, row) in alpha.iter().enumerate() {
            surviving[i] += row.iter().filter(|a| !is_hole(**a)).count();
        }
        bands.push(CorrectedBand {
            freq_hz: band.freq_hz,
            alpha,
        });
    }

    summary.effective_span_hz = span_hz(&bands);

    Ok(CorrectedChannels {
        bands,
        anchors,
        master_anchor_dist,
        surviving,
        masking: summary,
    })
}

/// Frequency span of the surviving bands.
fn span_hz(bands: &[CorrectedBand]) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for b in bands {
        lo = lo.min(b.freq_hz);
        hi = hi.max(b.freq_hz);
    }
    if hi >= lo {
        hi - lo
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use bloc_chan::geometry::Room;
    use bloc_chan::sounder::{all_data_channels, Sounder, SounderConfig};
    use bloc_chan::{Environment, FaultPlan};
    use bloc_num::angle::unwrap;
    use bloc_num::constants::SPEED_OF_LIGHT;
    use bloc_num::linalg::linear_fit;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn anchors(room: &Room) -> Vec<AnchorArray> {
        room.wall_midpoints()
            .iter()
            .zip(room.walls().iter())
            .enumerate()
            .map(|(i, (&m, w))| AnchorArray::centered(i, m, w.direction(), 4))
            .collect()
    }

    /// Free-space, noiseless soundings with random offsets.
    fn sound_free_space(seed: u64) -> (SoundingData, P2) {
        let room = Room::new(5.0, 6.0);
        let env = Environment::free_space();
        let anchors = anchors(&room);
        let sounder = Sounder::new(
            &env,
            &anchors,
            SounderConfig {
                csi_snr_db: 300.0,
                antenna_phase_err_std: 0.0,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let tag = P2::new(1.7, 2.3);
        (sounder.sound(tag, &all_data_channels(), &mut rng), tag)
    }

    #[test]
    fn corrected_phase_is_linear_in_frequency() {
        // The headline microbenchmark (paper Fig. 8b): raw measured phase
        // is random across subbands; corrected phase is linear.
        let (data, _) = sound_free_space(1);
        let corrected = correct(&data, true).unwrap();

        let freqs: Vec<f64> = corrected.bands.iter().map(|b| b.freq_hz).collect();

        // Raw phases: garbled.
        let raw: Vec<f64> = data
            .bands
            .iter()
            .map(|b| b.tag_to_anchor[1][2].arg())
            .collect();
        let (_, _, r2_raw) = linear_fit(&freqs, &unwrap(&raw)).unwrap();

        // Corrected phases: linear with slope −2πΔ/c.
        let cor: Vec<f64> = corrected
            .bands
            .iter()
            .map(|b| b.alpha[1][2].arg())
            .collect();
        let (slope, _, r2_cor) = linear_fit(&freqs, &unwrap(&cor)).unwrap();

        assert!(
            r2_cor > 0.999,
            "corrected phase must be linear, r² = {r2_cor}"
        );
        assert!(r2_raw < 0.95, "raw phase must stay garbled, r² = {r2_raw}");

        let (_, tag) = sound_free_space(1);
        let delta = corrected.relative_distance(1, 2, tag);
        let expected_slope = -std::f64::consts::TAU * delta / SPEED_OF_LIGHT;
        assert!(
            (slope - expected_slope).abs() / expected_slope.abs().max(1e-9) < 1e-2,
            "slope {slope} vs expected {expected_slope}"
        );
    }

    #[test]
    fn correction_is_exactly_offset_free() {
        // Same environment sounded with and without offsets: α must agree.
        let room = Room::new(5.0, 6.0);
        let env = Environment::free_space();
        let anchors = anchors(&room);
        let cfg = SounderConfig {
            csi_snr_db: 300.0,
            antenna_phase_err_std: 0.0,
            ..Default::default()
        };
        let sounder = Sounder::new(&env, &anchors, cfg);
        let tag = P2::new(3.1, 4.2);
        let chans = all_data_channels();

        let mut rng = StdRng::seed_from_u64(2);
        let garbled = correct(&sounder.sound(tag, &chans, &mut rng), false).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let ideal = correct(&sounder.sound_ideal(tag, &chans, &mut rng), false).unwrap();

        for (bg, bi) in garbled.bands.iter().zip(&ideal.bands) {
            for i in 0..4 {
                for j in 0..4 {
                    let g = bg.alpha[i][j];
                    let c = bi.alpha[i][j];
                    assert!(
                        (g - c).abs() < 1e-6 * c.abs().max(1e-12),
                        "band {} anchor {i} ant {j}: {g:?} vs {c:?}",
                        bg.freq_hz
                    );
                }
            }
        }
    }

    #[test]
    fn master_alpha_reference_is_own_antenna_zero() {
        let (data, _) = sound_free_space(4);
        let corrected = correct(&data, false).unwrap();
        for b in &corrected.bands {
            // α_00 = |ĥ00|² is real and positive.
            let a00 = b.alpha[0][0];
            assert!(a00.im.abs() < 1e-12 * a00.re.max(1e-12));
            assert!(a00.re > 0.0);
        }
    }

    #[test]
    fn relative_distance_geometry() {
        let (data, tag) = sound_free_space(5);
        let c = correct(&data, true).unwrap();
        // i = 0, j = 0: Δ = 0 by construction.
        assert!(c.relative_distance(0, 0, tag).abs() < 1e-12);
        // Reconstruction: Δ_ij = d_ij − d_00 − d_i0.
        let d = c.relative_distance(2, 3, tag);
        let manual = tag.dist(c.anchors[2].antenna(3))
            - tag.dist(c.anchors[0].antenna(0))
            - c.anchors[2].antenna(0).dist(c.anchors[0].antenna(0));
        assert!((d - manual).abs() < 1e-12);
    }

    #[test]
    fn normalization_gives_unit_magnitudes() {
        let (data, _) = sound_free_space(6);
        let c = correct(&data, true).unwrap();
        for b in &c.bands {
            for row in &b.alpha {
                for a in row {
                    assert!((a.abs() - 1.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn clean_sounding_masks_nothing() {
        let (data, _) = sound_free_space(8);
        let c = correct(&data, true).unwrap();
        assert_eq!(c.masking.bands_dropped, 0);
        assert_eq!(c.masking.holes_masked, 0);
        assert_eq!(c.masking.nonfinite_masked, 0);
        assert_eq!(c.masking.bands_total, data.bands.len());
        assert!(
            c.masking.effective_span_hz > 70e6,
            "37 channels span ~78 MHz"
        );
        assert_eq!(c.usable_anchors(), vec![0, 1, 2, 3]);
        for i in 0..4 {
            assert_eq!(c.surviving[i], data.bands.len() * 4);
            assert!((c.surviving_fraction(i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn structural_errors_are_typed() {
        let room = Room::new(5.0, 6.0);
        let empty_bands = SoundingData {
            bands: Vec::new(),
            anchors: anchors(&room),
        };
        assert_eq!(
            correct(&empty_bands, true).unwrap_err(),
            LocalizeError::EmptySounding
        );
        let (data, _) = sound_free_space(9);
        let no_anchors = SoundingData {
            bands: data.bands.clone(),
            anchors: Vec::new(),
        };
        assert_eq!(
            correct(&no_anchors, true).unwrap_err(),
            LocalizeError::NoAnchors
        );
    }

    #[test]
    fn masked_holes_reconcile_with_injected_census() {
        // The contract the fault_soak binary depends on: the masking pass
        // absorbs exactly the holes the fault plan punched.
        let room = Room::new(5.0, 6.0);
        let env = Environment::free_space();
        let anchors = anchors(&room);
        let plan = FaultPlan {
            seed: 42,
            tag_loss: 0.3,
            master_loss: 0.1,
            dropouts: vec![bloc_chan::AnchorDropout {
                anchor: 2,
                bands: 4..12,
            }],
            dead_antennas: vec![(1, 1)],
            ..Default::default()
        };
        let sounder =
            Sounder::new(&env, &anchors, SounderConfig::default()).with_faults(plan.clone());
        let mut rng = StdRng::seed_from_u64(10);
        let data = sounder.sound(P2::new(2.0, 3.0), &all_data_channels(), &mut rng);
        let census = plan.census(&all_data_channels(), &anchors);

        let c = correct(&data, true).unwrap();
        assert_eq!(c.masking.holes_masked, census.holes());
        assert_eq!(c.masking.bands_dropped, census.master_tag_lost_bands);
        assert_eq!(c.masking.nonfinite_masked, 0);
        assert_eq!(c.bands.len() + c.masking.bands_dropped, data.bands.len());
    }

    #[test]
    fn masked_alpha_entries_are_exact_zeros() {
        let room = Room::new(5.0, 6.0);
        let env = Environment::free_space();
        let anchors = anchors(&room);
        let plan = FaultPlan {
            seed: 3,
            tag_loss: 0.4,
            master_loss: 0.2,
            ..Default::default()
        };
        let sounder = Sounder::new(&env, &anchors, SounderConfig::default()).with_faults(plan);
        let mut rng = StdRng::seed_from_u64(11);
        let data = sounder.sound(P2::new(1.5, 2.5), &all_data_channels(), &mut rng);
        let c = correct(&data, true).unwrap();

        // Normalization must never turn a hole into a fake unit phasor.
        let mut masked = 0usize;
        for b in &c.bands {
            for row in &b.alpha {
                for a in row {
                    let mag = a.abs();
                    assert!(
                        mag == 0.0 || (mag - 1.0).abs() < 1e-9,
                        "alpha magnitude {mag} is neither masked nor unit"
                    );
                    masked += (mag == 0.0) as usize;
                }
            }
        }
        assert!(masked > 0, "a 40% loss plan must mask something");
        // surviving[] agrees with the zeros actually present.
        for i in 0..4 {
            let nonzero: usize = c
                .bands
                .iter()
                .map(|b| b.alpha[i].iter().filter(|a| a.abs() > 0.0).count())
                .sum();
            assert_eq!(c.surviving[i], nonzero);
        }
    }

    #[test]
    fn dead_anchor_survives_as_zero_evidence() {
        let room = Room::new(5.0, 6.0);
        let env = Environment::free_space();
        let anchors = anchors(&room);
        let n_bands = all_data_channels().len();
        let plan = FaultPlan {
            seed: 1,
            dropouts: vec![bloc_chan::AnchorDropout {
                anchor: 3,
                bands: 0..n_bands,
            }],
            ..Default::default()
        };
        let sounder = Sounder::new(&env, &anchors, SounderConfig::default()).with_faults(plan);
        let mut rng = StdRng::seed_from_u64(12);
        let data = sounder.sound(P2::new(2.0, 2.0), &all_data_channels(), &mut rng);
        let c = correct(&data, true).unwrap();
        assert_eq!(c.surviving[3], 0);
        assert_eq!(c.usable_anchors(), vec![0, 1, 2]);
        assert_eq!(c.surviving_fraction(3), 0.0);
    }

    #[test]
    fn nonfinite_measurements_are_masked_not_propagated() {
        let (mut data, _) = sound_free_space(13);
        data.bands[2].tag_to_anchor[1][3] = C64::new(f64::NAN, 0.0);
        data.bands[5].master_to_anchor[2] = C64::new(f64::INFINITY, 1.0);
        let c = correct(&data, true).unwrap();
        assert_eq!(c.masking.nonfinite_masked, 2);
        assert!(is_hole(c.bands[2].alpha[1][3]));
        // The whole row of anchor 2 in band 5 lost its master link.
        assert!(c.bands[5].alpha[2].iter().all(|a| is_hole(*a)));
        for b in &c.bands {
            for a in b.alpha.iter().flatten() {
                assert!(a.re.is_finite() && a.im.is_finite());
            }
        }
    }

    #[test]
    fn malformed_band_is_dropped_not_panicked_on() {
        let (mut data, _) = sound_free_space(14);
        data.bands[7].tag_to_anchor.pop(); // lost an anchor row in transit
        let n = data.bands.len();
        let c = correct(&data, true).unwrap();
        assert_eq!(c.masking.bands_dropped, 1);
        assert_eq!(c.bands.len(), n - 1);
    }

    #[test]
    fn all_bands_dropped_is_ok_with_empty_tensor() {
        // Every master tag measurement lost ⇒ no usable band, but correct()
        // still reports what it absorbed instead of failing.
        let (mut data, _) = sound_free_space(15);
        for b in &mut data.bands {
            for h in &mut b.tag_to_anchor[0] {
                *h = bloc_num::complex::ZERO;
            }
            for h in b.master_to_anchor.iter_mut().skip(1) {
                *h = bloc_num::complex::ZERO;
            }
        }
        let c = correct(&data, true).unwrap();
        assert!(c.bands.is_empty());
        assert_eq!(c.masking.bands_dropped, c.masking.bands_total);
        assert_eq!(c.masking.effective_span_hz, 0.0);
        assert_eq!(c.masking.holes_masked, data.bands.len() * 7); // 4 + 3 per band
        assert!(c.usable_anchors().is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_offsets_cancel_for_any_tag_position(tx in 0.6..4.4f64, ty in 0.6..5.4f64,
                                                    seed in 0u64..1000) {
            // Eq. 10 must hold for arbitrary geometry: garbled and ideal
            // soundings yield identical corrected channels.
            let room = Room::new(5.0, 6.0);
            let env = Environment::free_space();
            let anchors = anchors(&room);
            let cfg = SounderConfig {
                csi_snr_db: 300.0,
                antenna_phase_err_std: 0.0,
                ..Default::default()
            };
            let sounder = Sounder::new(&env, &anchors, cfg);
            let tag = P2::new(tx, ty);
            let chans = &all_data_channels()[..6];

            let mut rng = StdRng::seed_from_u64(seed);
            let garbled = correct(&sounder.sound(tag, chans, &mut rng), false).unwrap();
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
            let ideal = correct(&sounder.sound_ideal(tag, chans, &mut rng), false).unwrap();
            for (bg, bi) in garbled.bands.iter().zip(&ideal.bands) {
                for i in 0..4 {
                    for j in 0..4 {
                        let d = (bg.alpha[i][j] - bi.alpha[i][j]).abs();
                        prop_assert!(d < 1e-6 * bi.alpha[i][j].abs().max(1e-15));
                    }
                }
            }
        }
    }

    #[test]
    fn antenna_relative_phases_preserved_within_anchor() {
        // Correction multiplies all antennas of an anchor by the same
        // factor, so within-anchor phase differences (the AoA information,
        // §5.3 "Effect on Angle Measurements") are untouched.
        let (data, _) = sound_free_space(7);
        let c = correct(&data, false).unwrap();
        for (braw, bcor) in data.bands.iter().zip(&c.bands) {
            for i in 0..4 {
                for j in 1..4 {
                    let raw_rel =
                        (braw.tag_to_anchor[i][j] * braw.tag_to_anchor[i][0].conj()).arg();
                    let cor_rel = (bcor.alpha[i][j] * bcor.alpha[i][0].conj()).arg();
                    assert!(
                        (raw_rel - cor_rel).abs() < 1e-9,
                        "anchor {i} antenna {j}: {raw_rel} vs {cor_rel}"
                    );
                }
            }
        }
    }
}
