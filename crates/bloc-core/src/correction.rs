//! Phase-offset cancellation across anchors — paper §5.2, Eqs. 7–14.
//!
//! Every frequency hop leaves each device's oscillator at a random phase,
//! so the measured channels are `ĥ^f_ij = h^f_ij·e^{ι(φT−φRi)}` etc. BLoc's
//! insight: the slave anchors overhear *both* directions of the
//! master↔tag exchange, and the product
//!
//! `α^f_ij = ĥ^f_ij · Ĥ^{f*}_i0 · ĥ^{f*}_00`
//!
//! cancels every offset (Eq. 10) because
//! `(φT−φRi) − (φR0−φRi) − (φT−φR0) = 0`. Geometrically (Eq. 14) the
//! corrected channel's phase encodes the *relative* distance
//! `d^ij_T − d^00_T − d^{i0}_{00}`, where the last term (master-to-anchor
//! spacing) is known from deployment.
//!
//! The master anchor itself needs no inter-anchor correction: all its
//! antennas share one oscillator, so `α^f_0j = ĥ^f_0j · ĥ^{f*}_00` is
//! already offset-free with reference distance `d^00_T`.

use bloc_chan::sounder::SoundingData;
use bloc_chan::AnchorArray;
use bloc_num::{C64, P2};

/// Corrected channels for one frequency band.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CorrectedBand {
    /// Band centre frequency, hertz.
    pub freq_hz: f64,
    /// `alpha[i][j]` = corrected channel `α^f_ij`.
    pub alpha: Vec<Vec<C64>>,
}

/// The full corrected-channel tensor plus the geometry needed to interpret
/// it.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CorrectedChannels {
    /// Per-band corrected channels, in sounding order.
    pub bands: Vec<CorrectedBand>,
    /// Anchor geometry (anchor 0 is the master).
    pub anchors: Vec<AnchorArray>,
    /// `d^{i0}_{00}`: distance from master antenna 0 to anchor *i* antenna
    /// 0, measured once at deployment (paper §5.3: "a fixed distance known
    /// a priori"). Entry 0 is 0.
    pub master_anchor_dist: Vec<f64>,
}

impl CorrectedChannels {
    /// Number of anchors.
    pub fn n_anchors(&self) -> usize {
        self.anchors.len()
    }

    /// The reference phase argument for anchor `i`, antenna `j`, at a
    /// hypothetical tag position `x`: the relative path length
    /// `Δ_ij(x) = d_ij(x) − d_00(x) − d^{i0}_{00}` whose phase
    /// `−2πfΔ/c` a corrected channel would carry if the tag were at `x`
    /// (Eq. 14).
    pub fn relative_distance(&self, i: usize, j: usize, x: P2) -> f64 {
        let d_ij = x.dist(self.anchors[i].antenna(j));
        let d_00 = x.dist(self.anchors[0].antenna(0));
        d_ij - d_00 - self.master_anchor_dist[i]
    }
}

/// Applies BLoc's offset cancellation to a sounding.
///
/// When `normalize` is true each corrected channel is scaled to unit
/// magnitude: Eq. 17's correlation then weighs every (antenna, band)
/// observation equally instead of by the product of three link amplitudes.
/// The pipeline defaults to `true` (see `BlocConfig`); the raw Eq.-10 form
/// is available for ablation.
pub fn correct(data: &SoundingData, normalize: bool) -> CorrectedChannels {
    let anchors = data.anchors.clone();
    let master0 = anchors[0].antenna(0);
    let master_anchor_dist: Vec<f64> = anchors.iter().map(|a| a.antenna(0).dist(master0)).collect();

    let bands = data
        .bands
        .iter()
        .map(|band| {
            let h00 = band.tag_to_master0();
            let alpha = band
                .tag_to_anchor
                .iter()
                .enumerate()
                .map(|(i, row)| {
                    row.iter()
                        .map(|&h_ij| {
                            // Master (i = 0): within-anchor reference only.
                            // Slaves: the full three-term product of Eq. 10.
                            let a = if i == 0 {
                                h_ij * h00.conj()
                            } else {
                                h_ij * band.master_to_anchor[i].conj() * h00.conj()
                            };
                            if normalize {
                                a.normalize()
                            } else {
                                a
                            }
                        })
                        .collect()
                })
                .collect();
            CorrectedBand {
                freq_hz: band.freq_hz,
                alpha,
            }
        })
        .collect();

    CorrectedChannels {
        bands,
        anchors,
        master_anchor_dist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloc_chan::geometry::Room;
    use bloc_chan::sounder::{all_data_channels, Sounder, SounderConfig};
    use bloc_chan::Environment;
    use bloc_num::angle::unwrap;
    use bloc_num::constants::SPEED_OF_LIGHT;
    use bloc_num::linalg::linear_fit;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn anchors(room: &Room) -> Vec<AnchorArray> {
        room.wall_midpoints()
            .iter()
            .zip(room.walls().iter())
            .enumerate()
            .map(|(i, (&m, w))| AnchorArray::centered(i, m, w.direction(), 4))
            .collect()
    }

    /// Free-space, noiseless soundings with random offsets.
    fn sound_free_space(seed: u64) -> (SoundingData, P2) {
        let room = Room::new(5.0, 6.0);
        let env = Environment::free_space();
        let anchors = anchors(&room);
        let sounder = Sounder::new(
            &env,
            &anchors,
            SounderConfig {
                csi_snr_db: 300.0,
                antenna_phase_err_std: 0.0,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let tag = P2::new(1.7, 2.3);
        (sounder.sound(tag, &all_data_channels(), &mut rng), tag)
    }

    #[test]
    fn corrected_phase_is_linear_in_frequency() {
        // The headline microbenchmark (paper Fig. 8b): raw measured phase
        // is random across subbands; corrected phase is linear.
        let (data, _) = sound_free_space(1);
        let corrected = correct(&data, true);

        let freqs: Vec<f64> = corrected.bands.iter().map(|b| b.freq_hz).collect();

        // Raw phases: garbled.
        let raw: Vec<f64> = data
            .bands
            .iter()
            .map(|b| b.tag_to_anchor[1][2].arg())
            .collect();
        let (_, _, r2_raw) = linear_fit(&freqs, &unwrap(&raw)).unwrap();

        // Corrected phases: linear with slope −2πΔ/c.
        let cor: Vec<f64> = corrected
            .bands
            .iter()
            .map(|b| b.alpha[1][2].arg())
            .collect();
        let (slope, _, r2_cor) = linear_fit(&freqs, &unwrap(&cor)).unwrap();

        assert!(
            r2_cor > 0.999,
            "corrected phase must be linear, r² = {r2_cor}"
        );
        assert!(r2_raw < 0.95, "raw phase must stay garbled, r² = {r2_raw}");

        let (_, tag) = sound_free_space(1);
        let delta = corrected.relative_distance(1, 2, tag);
        let expected_slope = -std::f64::consts::TAU * delta / SPEED_OF_LIGHT;
        assert!(
            (slope - expected_slope).abs() / expected_slope.abs().max(1e-9) < 1e-2,
            "slope {slope} vs expected {expected_slope}"
        );
    }

    #[test]
    fn correction_is_exactly_offset_free() {
        // Same environment sounded with and without offsets: α must agree.
        let room = Room::new(5.0, 6.0);
        let env = Environment::free_space();
        let anchors = anchors(&room);
        let cfg = SounderConfig {
            csi_snr_db: 300.0,
            antenna_phase_err_std: 0.0,
            ..Default::default()
        };
        let sounder = Sounder::new(&env, &anchors, cfg);
        let tag = P2::new(3.1, 4.2);
        let chans = all_data_channels();

        let mut rng = StdRng::seed_from_u64(2);
        let garbled = correct(&sounder.sound(tag, &chans, &mut rng), false);
        let mut rng = StdRng::seed_from_u64(3);
        let ideal = correct(&sounder.sound_ideal(tag, &chans, &mut rng), false);

        for (bg, bi) in garbled.bands.iter().zip(&ideal.bands) {
            for i in 0..4 {
                for j in 0..4 {
                    let g = bg.alpha[i][j];
                    let c = bi.alpha[i][j];
                    assert!(
                        (g - c).abs() < 1e-6 * c.abs().max(1e-12),
                        "band {} anchor {i} ant {j}: {g:?} vs {c:?}",
                        bg.freq_hz
                    );
                }
            }
        }
    }

    #[test]
    fn master_alpha_reference_is_own_antenna_zero() {
        let (data, _) = sound_free_space(4);
        let corrected = correct(&data, false);
        for b in &corrected.bands {
            // α_00 = |ĥ00|² is real and positive.
            let a00 = b.alpha[0][0];
            assert!(a00.im.abs() < 1e-12 * a00.re.max(1e-12));
            assert!(a00.re > 0.0);
        }
    }

    #[test]
    fn relative_distance_geometry() {
        let (data, tag) = sound_free_space(5);
        let c = correct(&data, true);
        // i = 0, j = 0: Δ = 0 by construction.
        assert!(c.relative_distance(0, 0, tag).abs() < 1e-12);
        // Reconstruction: Δ_ij = d_ij − d_00 − d_i0.
        let d = c.relative_distance(2, 3, tag);
        let manual = tag.dist(c.anchors[2].antenna(3))
            - tag.dist(c.anchors[0].antenna(0))
            - c.anchors[2].antenna(0).dist(c.anchors[0].antenna(0));
        assert!((d - manual).abs() < 1e-12);
    }

    #[test]
    fn normalization_gives_unit_magnitudes() {
        let (data, _) = sound_free_space(6);
        let c = correct(&data, true);
        for b in &c.bands {
            for row in &b.alpha {
                for a in row {
                    assert!((a.abs() - 1.0).abs() < 1e-9);
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_offsets_cancel_for_any_tag_position(tx in 0.6..4.4f64, ty in 0.6..5.4f64,
                                                    seed in 0u64..1000) {
            // Eq. 10 must hold for arbitrary geometry: garbled and ideal
            // soundings yield identical corrected channels.
            let room = Room::new(5.0, 6.0);
            let env = Environment::free_space();
            let anchors = anchors(&room);
            let cfg = SounderConfig {
                csi_snr_db: 300.0,
                antenna_phase_err_std: 0.0,
                ..Default::default()
            };
            let sounder = Sounder::new(&env, &anchors, cfg);
            let tag = P2::new(tx, ty);
            let chans = &all_data_channels()[..6];

            let mut rng = StdRng::seed_from_u64(seed);
            let garbled = correct(&sounder.sound(tag, chans, &mut rng), false);
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
            let ideal = correct(&sounder.sound_ideal(tag, chans, &mut rng), false);
            for (bg, bi) in garbled.bands.iter().zip(&ideal.bands) {
                for i in 0..4 {
                    for j in 0..4 {
                        let d = (bg.alpha[i][j] - bi.alpha[i][j]).abs();
                        prop_assert!(d < 1e-6 * bi.alpha[i][j].abs().max(1e-15));
                    }
                }
            }
        }
    }

    #[test]
    fn antenna_relative_phases_preserved_within_anchor() {
        // Correction multiplies all antennas of an anchor by the same
        // factor, so within-anchor phase differences (the AoA information,
        // §5.3 "Effect on Angle Measurements") are untouched.
        let (data, _) = sound_free_space(7);
        let c = correct(&data, false);
        for (braw, bcor) in data.bands.iter().zip(&c.bands) {
            for i in 0..4 {
                for j in 1..4 {
                    let raw_rel =
                        (braw.tag_to_anchor[i][j] * braw.tag_to_anchor[i][0].conj()).arg();
                    let cor_rel = (bcor.alpha[i][j] * bcor.alpha[i][0].conj()).arg();
                    assert!(
                        (raw_rel - cor_rel).abs() < 1e-9,
                        "anchor {i} antenna {j}: {raw_rel} vs {cor_rel}"
                    );
                }
            }
        }
    }
}
