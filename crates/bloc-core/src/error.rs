//! Typed pipeline failures and the degradation evidence trail.
//!
//! `localize()` used to answer with a bare `Option`: a `None` said nothing
//! about *why* a fix failed, and any malformed measurement reaching the
//! hot path panicked. Production ingestion needs both fixed: a typed
//! [`LocalizeError`] for every way a sounding can be unusable, and a
//! [`DegradationReport`] attached to every successful estimate describing
//! what the pipeline had to discard to produce it (paper context: Eq. 10
//! needs a complete tag/master/anchor measurement triple per band; §5.1's
//! bandwidth stitching shrinks with every band lost; §7's interference
//! study shows whole channels can be garbage).

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::fmt;

/// Why localization produced no estimate. Reserved for *measurement*
/// problems — programmer errors (impossible shapes built in code) still
/// panic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LocalizeError {
    /// The sounding carried no bands at all.
    EmptySounding,
    /// The sounding carried no anchors (anchor 0 is the required master).
    NoAnchors,
    /// Every band was dropped by masking — typically every master tag
    /// measurement (`ĥ00`) was lost, leaving Eq. 10 undefined everywhere.
    NoUsableBands {
        /// Bands present in the sounding.
        total: usize,
        /// Bands dropped by masking (equals `total` here by definition).
        dropped: usize,
    },
    /// After excluding dead anchors, fewer than two remained — a single
    /// anchor's likelihood is an unresolvable wedge/hyperbola (paper
    /// Fig. 6), not a fix.
    TooFewUsableAnchors {
        /// Anchors that still had surviving measurements.
        usable: usize,
        /// Anchors in the deployment.
        total: usize,
    },
    /// The joint likelihood had no extractable peak.
    NoPeak,
}

impl fmt::Display for LocalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptySounding => write!(f, "sounding has no bands"),
            Self::NoAnchors => write!(f, "sounding has no anchors (anchor 0 must be the master)"),
            Self::NoUsableBands { total, dropped } => write!(
                f,
                "all bands unusable: {dropped} of {total} dropped by masking"
            ),
            Self::TooFewUsableAnchors { usable, total } => write!(
                f,
                "only {usable} of {total} anchors have surviving measurements (need 2)"
            ),
            Self::NoPeak => write!(f, "joint likelihood has no extractable peak"),
        }
    }
}

impl std::error::Error for LocalizeError {}

impl LocalizeError {
    /// A short machine-readable reason (the `bloc-obs` event field /
    /// counter suffix for this failure).
    pub fn reason(&self) -> &'static str {
        match self {
            Self::EmptySounding => "empty",
            Self::NoAnchors => "no_anchors",
            Self::NoUsableBands { .. } => "no_usable_bands",
            Self::TooFewUsableAnchors { .. } => "too_few_usable_anchors",
            Self::NoPeak => "no_peak",
        }
    }
}

/// Why the runtime supervisor declined to attempt (or accept) a localize
/// this round. A deferral is not a failure: it is the supervisor's typed
/// statement that conditions were below its admission policy and the
/// round should be retried later, against [`LocalizeError`] which reports
/// a localize that was attempted and produced nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DeferReason {
    /// Too few anchors were admitted (live and not quarantined by the
    /// circuit breaker) to meet the quorum policy.
    AnchorQuorum {
        /// Anchors admitted this round.
        live: usize,
        /// The policy minimum.
        required: usize,
    },
    /// The sounding survived with fewer bands than the quorum policy
    /// requires for a trustworthy stitch (paper §5.1: span — hence band
    /// count — sets the relative-distance resolution).
    BandQuorum {
        /// Bands that survived masking.
        surviving: usize,
        /// The policy minimum.
        required: usize,
    },
    /// Every backoff-scheduled attempt of the round failed; the last
    /// typed failure is carried for diagnosis.
    RetriesExhausted {
        /// Attempts made (initial + retries).
        attempts: usize,
        /// The failure of the final attempt.
        last: LocalizeError,
    },
    /// The round's time budget ([`bloc_num::par::Deadline`]) ran out
    /// before an estimate was produced: the round defers itself instead
    /// of stalling the batch it is part of (fleet serving's per-round
    /// deadline bulkhead).
    DeadlineExceeded {
        /// The configured budget, µs.
        budget_us: u64,
        /// Cost charged by the time the deadline was observed, µs.
        spent_us: u64,
    },
}

impl fmt::Display for DeferReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::AnchorQuorum { live, required } => {
                write!(f, "anchor quorum not met: {live} live, need {required}")
            }
            Self::BandQuorum {
                surviving,
                required,
            } => write!(
                f,
                "band quorum not met: {surviving} surviving, need {required}"
            ),
            Self::RetriesExhausted { attempts, last } => {
                write!(f, "all {attempts} attempts failed; last: {last}")
            }
            Self::DeadlineExceeded {
                budget_us,
                spent_us,
            } => write!(
                f,
                "round deadline exceeded: {spent_us} µs spent of a {budget_us} µs budget"
            ),
        }
    }
}

impl DeferReason {
    /// A short machine-readable reason (the `bloc-obs` counter suffix for
    /// this deferral).
    pub fn reason(&self) -> &'static str {
        match self {
            Self::AnchorQuorum { .. } => "anchor_quorum",
            Self::BandQuorum { .. } => "band_quorum",
            Self::RetriesExhausted { .. } => "retries_exhausted",
            Self::DeadlineExceeded { .. } => "deadline",
        }
    }
}

/// What the pipeline discarded on the way to an estimate — the evidence
/// that a fix produced under degraded conditions *is* degraded, and by how
/// much.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DegradationReport {
    /// Bands in the input sounding.
    pub bands_total: usize,
    /// Bands dropped entirely (master tag measurement `ĥ00` missing or
    /// non-finite, or the band was malformed).
    pub bands_dropped: usize,
    /// Exactly-zero measurement holes masked (lost tag packets and lost
    /// master responses). Reconciles with `fault.injected.holes` when the
    /// sounding came from a faulted `Sounder`.
    pub holes_masked: usize,
    /// Non-finite measurements masked.
    pub nonfinite_masked: usize,
    /// Anchors in the deployment.
    pub anchors_total: usize,
    /// Anchors excluded from the joint likelihood because no measurement
    /// of theirs survived masking.
    pub anchors_excluded: Vec<usize>,
    /// Frequency span of the surviving bands, Hz — the *effective*
    /// stitched bandwidth after masking (paper §5.1: span sets the
    /// relative-distance resolution).
    pub effective_span_hz: f64,
    /// Peak-margin confidence of the chosen estimate, `[0, 1]` (the
    /// [`crate::Estimate::confidence`] value at estimation time).
    pub confidence: f64,
}

impl DegradationReport {
    /// True when nothing was masked, dropped or excluded — the sounding
    /// was consumed whole.
    pub fn is_clean(&self) -> bool {
        self.bands_dropped == 0
            && self.holes_masked == 0
            && self.nonfinite_masked == 0
            && self.anchors_excluded.is_empty()
    }

    /// Bands that actually fed the likelihood.
    pub fn bands_used(&self) -> usize {
        self.bands_total - self.bands_dropped
    }

    /// Anchors that actually fed the likelihood.
    pub fn anchors_used(&self) -> usize {
        self.anchors_total - self.anchors_excluded.len()
    }

    /// The fraction of the sounding's evidence that actually fed the
    /// likelihood, in `[0, 1]`: (bands used / bands total) × (anchors
    /// used / anchors total), with empty totals counting as fully
    /// surviving. This is the health signal the degraded-mode fusion
    /// weights ([`crate::fallback::FusionWeights`]) are derived from.
    pub fn survival_fraction(&self) -> f64 {
        let frac = |used: usize, total: usize| {
            if total == 0 {
                1.0
            } else {
                used as f64 / total as f64
            }
        };
        (frac(self.bands_used(), self.bands_total) * frac(self.anchors_used(), self.anchors_total))
            .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn display_and_reason_cover_every_variant() {
        let variants = [
            LocalizeError::EmptySounding,
            LocalizeError::NoAnchors,
            LocalizeError::NoUsableBands {
                total: 37,
                dropped: 37,
            },
            LocalizeError::TooFewUsableAnchors {
                usable: 1,
                total: 4,
            },
            LocalizeError::NoPeak,
        ];
        let mut reasons = std::collections::HashSet::new();
        for v in &variants {
            assert!(!v.to_string().is_empty());
            assert!(reasons.insert(v.reason()), "reasons must be distinct");
        }
    }

    #[test]
    fn defer_display_and_reason_cover_every_variant() {
        let variants = [
            DeferReason::AnchorQuorum {
                live: 2,
                required: 3,
            },
            DeferReason::BandQuorum {
                surviving: 5,
                required: 10,
            },
            DeferReason::RetriesExhausted {
                attempts: 4,
                last: LocalizeError::NoPeak,
            },
        ];
        let mut reasons = std::collections::HashSet::new();
        for v in &variants {
            assert!(!v.to_string().is_empty());
            assert!(reasons.insert(v.reason()), "reasons must be distinct");
        }
    }

    #[test]
    fn clean_report_is_clean() {
        let r = DegradationReport {
            bands_total: 37,
            anchors_total: 4,
            effective_span_hz: 80e6,
            confidence: 0.9,
            ..Default::default()
        };
        assert!(r.is_clean());
        assert_eq!(r.bands_used(), 37);
        assert_eq!(r.anchors_used(), 4);
    }

    #[test]
    fn degraded_report_is_not_clean() {
        let r = DegradationReport {
            bands_total: 37,
            bands_dropped: 5,
            holes_masked: 40,
            anchors_total: 4,
            anchors_excluded: vec![2],
            ..Default::default()
        };
        assert!(!r.is_clean());
        assert_eq!(r.bands_used(), 32);
        assert_eq!(r.anchors_used(), 3);
    }
}
