//! The AoA-combining baseline (paper §7: "we take AoA-combining as a
//! baseline comparison … least ToF based AoA localization systems
//! [21, 42], which is the state-of-the-art", implemented with "the same
//! number of antennas and the same set of channel measurements").
//!
//! Per anchor, the classic Bartlett angle spectrum (paper Eq. 3) is
//! computed from the *raw* measured channels — AoA needs only
//! within-anchor relative phases, which per-hop oscillator offsets do not
//! disturb (they are common to all antennas of an anchor, footnote 3).
//! Spectra are summed non-coherently across all sounded bands (cross-band
//! phase is garbled without BLoc's correction, so *coherent* combining is
//! impossible — that is the point of the paper).
//!
//! **Direct-path selection**, SpotFi-style \[21\]: among the spectrum's
//! peaks, pick the one with the smallest time-of-flight. On Wi-Fi that ToF
//! comes from 40 MHz of bandwidth; on BLE the only offset-free intra-band
//! observable is the phase difference between the two GFSK tones —
//! 500 kHz apart, measured ~16 µs apart in the packet, so the tag's
//! carrier-frequency offset rotates it by radians (see
//! `bloc_chan::sounder::SounderConfig::tag_cfo_max_hz`). The resulting
//! pseudo-ToF is noise beyond repair, the least-ToF selection picks among
//! multipath peaks near-arbitrarily, and the baseline lands at the
//! paper's metres-scale error. [`PeakSelection::Strongest`] is available
//! as the (stronger-than-paper) ablation.

use bloc_chan::sounder::{SoundingData, TONE_OFFSET_HZ};
use bloc_num::constants::SPEED_OF_LIGHT;
use bloc_num::linalg::{intersect_bearings, Ray};
use bloc_num::{C64, P2};

/// How the baseline chooses the direct path among spectrum peaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PeakSelection {
    /// Paper-faithful "least ToF": rank candidate peaks by the intra-band
    /// tone-pair pseudo-ToF.
    LeastPseudoTof,
    /// Strongest spectrum peak (a stronger baseline than the paper ran;
    /// kept for ablation).
    Strongest,
}

/// Configuration of the AoA baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AoaConfig {
    /// Number of grid points across `sin θ ∈ [−1, 1]`.
    pub n_angles: usize,
    /// Direct-path selection rule.
    pub selection: PeakSelection,
    /// Candidate peaks must reach this fraction of the spectrum maximum.
    pub min_rel_peak: f64,
}

impl Default for AoaConfig {
    fn default() -> Self {
        Self {
            n_angles: 181,
            selection: PeakSelection::LeastPseudoTof,
            min_rel_peak: 0.35,
        }
    }
}

/// One anchor's angle estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bearing {
    /// The anchor that produced it.
    pub anchor_id: usize,
    /// `sin θ` of the strongest spectrum peak (θ from boresight).
    pub sin_theta: f64,
    /// World-frame unit direction of the bearing.
    pub direction: P2,
    /// Spectrum value at the peak (the triangulation weight).
    pub weight: f64,
}

/// The Bartlett angle spectrum of anchor `i`: `spectrum[q]` is the
/// likelihood of arrival from `sin θ = −1 + 2q/(n−1)`, summed over bands.
pub fn angle_spectrum(data: &SoundingData, i: usize, config: &AoaConfig) -> Vec<f64> {
    let anchor = &data.anchors[i];
    let n = config.n_angles.max(2);
    let mut spectrum = vec![0.0; n];
    for band in &data.bands {
        let lambda_inv = band.freq_hz / SPEED_OF_LIGHT;
        for (q, s) in spectrum.iter_mut().enumerate() {
            let sin_theta = -1.0 + 2.0 * q as f64 / (n - 1) as f64;
            let mut acc = bloc_num::complex::ZERO;
            for (j, &h) in band.tag_to_anchor[i].iter().enumerate() {
                // Antenna j is *closer* to a target at sin θ > 0 (θ from
                // boresight towards the array axis) by j·l·sinθ, so its
                // channel carries phase +2πjl·sinθ/λ; correlate with the
                // conjugate steering phase.
                let phase =
                    -std::f64::consts::TAU * j as f64 * anchor.spacing * sin_theta * lambda_inv;
                acc += h * C64::cis(phase);
            }
            *s += acc.abs();
        }
    }
    spectrum
}

/// Local maxima of a 1-D spectrum at least `min_rel` of the global max,
/// as `(index, value)` pairs.
fn spectrum_peaks(spectrum: &[f64], min_rel: f64) -> Vec<(usize, f64)> {
    let max = spectrum.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max <= 0.0 || max.is_nan() {
        return Vec::new();
    }
    let floor = max * min_rel;
    let n = spectrum.len();
    (0..n)
        .filter(|&q| {
            let v = spectrum[q];
            v >= floor && (q == 0 || spectrum[q - 1] < v) && (q == n - 1 || spectrum[q + 1] <= v)
        })
        .map(|q| (q, spectrum[q]))
        .collect()
}

/// The tone-pair pseudo-range (metres, wrapped into `[0, c/Δf)`) of the
/// arrival at spectrum bin `q` for anchor `i`: beamform both tones toward
/// the bin's bearing, accumulate `y₁·y₀*` across bands (the intra-band
/// tone difference is oscillator-offset-free, so this sum is legitimate
/// without BLoc's correction), and convert the residual phase to distance.
/// CFO contamination makes the result effectively random — the mechanism
/// behind the baseline's failure.
fn pseudo_range(data: &SoundingData, i: usize, sin_theta: f64) -> f64 {
    let anchor = &data.anchors[i];
    let tone_sep = 2.0 * TONE_OFFSET_HZ;
    let mut acc = bloc_num::complex::ZERO;
    for band in &data.bands {
        let lambda_inv = band.freq_hz / SPEED_OF_LIGHT;
        let mut y = [bloc_num::complex::ZERO; 2];
        for (j, tones) in band.tag_to_anchor_tones[i].iter().enumerate() {
            let steer = C64::cis(
                -std::f64::consts::TAU * j as f64 * anchor.spacing * sin_theta * lambda_inv,
            );
            y[0] += tones[0] * steer;
            y[1] += tones[1] * steer;
        }
        acc += y[1] * y[0].conj();
    }
    // φ(f₁) − φ(f₀) = −2π·Δf·d/c (+ CFO) ⇒ d = −φ·c/(2π·Δf), wrapped.
    let d = -acc.arg() * SPEED_OF_LIGHT / (std::f64::consts::TAU * tone_sep);
    d.rem_euclid(SPEED_OF_LIGHT / tone_sep)
}

/// The baseline's chosen bearing for anchor `i`, per the configured
/// direct-path selection rule.
pub fn best_bearing(data: &SoundingData, i: usize, config: &AoaConfig) -> Option<Bearing> {
    let spectrum = angle_spectrum(data, i, config);
    let n = spectrum.len();
    let peaks = spectrum_peaks(&spectrum, config.min_rel_peak);
    if peaks.is_empty() {
        return None;
    }

    let bin_to_sin = |q: usize| -1.0 + 2.0 * q as f64 / (n - 1) as f64;
    let (q, weight) = match config.selection {
        PeakSelection::Strongest => peaks
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("spectrum finite"))
            .expect("non-empty"),
        PeakSelection::LeastPseudoTof => peaks
            .into_iter()
            .min_by(|a, b| {
                let ra = pseudo_range(data, i, bin_to_sin(a.0));
                let rb = pseudo_range(data, i, bin_to_sin(b.0));
                ra.partial_cmp(&rb).expect("pseudo-range finite")
            })
            .expect("non-empty"),
    };
    if weight <= 0.0 {
        return None;
    }
    // Once a peak has been *selected* as the direct path, the baseline
    // commits to it: bearings enter the triangulation equally. (Weighting
    // by spectrum value would let strong-but-wrong reflections dominate or
    // weak-but-chosen peaks be ignored — neither is what a least-ToF
    // system does.)
    let weight = match config.selection {
        PeakSelection::LeastPseudoTof => 1.0,
        PeakSelection::Strongest => weight,
    };
    let sin_theta = bin_to_sin(q);
    let anchor = &data.anchors[i];
    let cos_theta = (1.0 - sin_theta * sin_theta).max(0.0).sqrt();
    // Boresight points into the room for wall-mounted anchors, resolving
    // the linear array's front-back ambiguity.
    let direction = (anchor.boresight() * cos_theta + anchor.axis * sin_theta).normalize();
    Some(Bearing {
        anchor_id: anchor.id,
        sin_theta,
        direction,
        weight,
    })
}

/// Localizes by intersecting the per-anchor strongest bearings. Returns
/// `None` with fewer than two usable bearings or degenerate geometry.
pub fn localize(data: &SoundingData, config: &AoaConfig) -> Option<P2> {
    let rays: Vec<(Ray, f64)> = (0..data.anchors.len())
        .filter_map(|i| {
            best_bearing(data, i, config).map(|b| {
                (
                    Ray {
                        origin: data.anchors[i].center(),
                        dir: b.direction,
                    },
                    b.weight,
                )
            })
        })
        .collect();
    intersect_bearings(&rays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloc_chan::geometry::Room;
    use bloc_chan::materials::Material;
    use bloc_chan::sounder::{all_data_channels, Sounder, SounderConfig};
    use bloc_chan::{AnchorArray, Environment};
    use rand::{rngs::StdRng, SeedableRng};

    /// Free-space correctness tests exercise the algebra, not hardware
    /// realism: zero calibration error.
    fn clean() -> SounderConfig {
        SounderConfig {
            antenna_phase_err_std: 0.0,
            ..Default::default()
        }
    }

    fn anchors(room: &Room) -> Vec<AnchorArray> {
        room.wall_midpoints()
            .iter()
            .zip(room.walls().iter())
            .enumerate()
            .map(|(i, (&m, w))| AnchorArray::centered(i, m, w.direction(), 4))
            .collect()
    }

    #[test]
    fn free_space_bearing_points_at_tag() {
        let room = Room::new(5.0, 6.0);
        let env = Environment::free_space();
        let anchors = anchors(&room);
        let sounder = Sounder::new(&env, &anchors, clean());
        let mut rng = StdRng::seed_from_u64(31);
        let tag = P2::new(2.0, 3.5);
        let data = sounder.sound(tag, &all_data_channels(), &mut rng);

        for (i, anchor) in anchors.iter().enumerate() {
            let b = best_bearing(&data, i, &AoaConfig::default()).unwrap();
            let truth = (tag - anchor.center()).normalize();
            let cos = b.direction.dot(truth);
            assert!(
                cos > 0.995,
                "anchor {i}: bearing {:?} vs truth {truth:?}",
                b.direction
            );
        }
    }

    #[test]
    fn free_space_triangulation_is_accurate() {
        let room = Room::new(5.0, 6.0);
        let env = Environment::free_space();
        let anchors = anchors(&room);
        let sounder = Sounder::new(&env, &anchors, clean());
        let mut rng = StdRng::seed_from_u64(32);
        let tag = P2::new(3.1, 2.4);
        let data = sounder.sound(tag, &all_data_channels(), &mut rng);
        let est = localize(&data, &AoaConfig::default()).unwrap();
        // With 4 antennas, the angular grid and beamwidth limit precision
        // to a few tens of centimetres even in free space.
        assert!(
            est.dist(tag) < 0.5,
            "AoA free-space error {}",
            est.dist(tag)
        );
    }

    #[test]
    fn offsets_do_not_hurt_aoa() {
        // AoA works on raw channels because offsets are common per anchor.
        let room = Room::new(5.0, 6.0);
        let env = Environment::free_space();
        let anchors = anchors(&room);
        let sounder = Sounder::new(&env, &anchors, clean());
        let tag = P2::new(1.5, 4.0);
        let chans = all_data_channels();

        let mut rng = StdRng::seed_from_u64(33);
        let garbled = sounder.sound(tag, &chans, &mut rng);
        let mut rng = StdRng::seed_from_u64(34);
        let ideal = sounder.sound_ideal(tag, &chans, &mut rng);

        let bg = best_bearing(&garbled, 2, &AoaConfig::default()).unwrap();
        let bi = best_bearing(&ideal, 2, &AoaConfig::default()).unwrap();
        assert!((bg.sin_theta - bi.sin_theta).abs() < 0.05);
    }

    #[test]
    fn multipath_degrades_aoa_more_than_free_space() {
        let room = Room::new(5.0, 6.0);
        let anchors = anchors(&room);
        let mut rng = StdRng::seed_from_u64(35);
        let env_mp = Environment::in_room(room)
            .with_walls(Material::metal(), &mut rng)
            .unwrap();
        let env_fs = Environment::free_space();

        let err_in = |env: &Environment, seed: u64| {
            let sounder = Sounder::new(env, &anchors, clean());
            let mut rng = StdRng::seed_from_u64(seed);
            let mut errs = Vec::new();
            for k in 0..8 {
                let tag = P2::new(1.0 + 0.4 * k as f64, 1.2 + 0.5 * k as f64 % 4.0);
                let data = sounder.sound(tag, &all_data_channels(), &mut rng);
                if let Some(est) = localize(&data, &AoaConfig::default()) {
                    errs.push(est.dist(tag));
                }
            }
            bloc_num::stats::median(&errs)
        };

        let fs = err_in(&env_fs, 40);
        let mp = err_in(&env_mp, 41);
        assert!(
            mp > fs,
            "multipath ({mp}) must be worse than free space ({fs})"
        );
    }

    #[test]
    fn too_few_anchors_is_none() {
        let room = Room::new(5.0, 6.0);
        let env = Environment::free_space();
        let all = anchors(&room);
        let one = &all[..1];
        let sounder = Sounder::new(&env, one, clean());
        let mut rng = StdRng::seed_from_u64(36);
        let data = sounder.sound(P2::new(2.0, 2.0), &all_data_channels()[..3], &mut rng);
        assert!(localize(&data, &AoaConfig::default()).is_none());
    }

    #[test]
    fn spectrum_length_and_positivity() {
        let room = Room::new(5.0, 6.0);
        let env = Environment::free_space();
        let anchors = anchors(&room);
        let sounder = Sounder::new(&env, &anchors, clean());
        let mut rng = StdRng::seed_from_u64(37);
        let data = sounder.sound(P2::new(2.0, 2.0), &all_data_channels()[..5], &mut rng);
        let s = angle_spectrum(
            &data,
            0,
            &AoaConfig {
                n_angles: 91,
                ..Default::default()
            },
        );
        assert_eq!(s.len(), 91);
        assert!(s.iter().all(|&v| v >= 0.0 && v.is_finite()));
    }
}
