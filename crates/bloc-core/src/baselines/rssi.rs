//! RSSI log-distance trilateration — the pre-CSI BLE status quo (paper
//! §2.2 and §9.2: "past work on Bluetooth localization has significantly
//! relied on using RSSI… either relies on extensive fingerprinting or is
//! inaccurate").
//!
//! The model: received amplitude `|h| ≈ A₀ / d^{n/2}` (power falls as
//! `d^−n`), so `d̂ = (A₀ / |h|)^{2/n}`. Amplitudes are averaged over all
//! antennas and bands (an RSSI radio reports one number per packet), then
//! the per-anchor ranges are trilaterated by Gauss–Newton. In multipath,
//! constructive/destructive fading makes `|h|` a poor proxy for distance —
//! the paper's Eq. 2 discussion — which is exactly what this baseline
//! demonstrates.

use bloc_chan::sounder::SoundingData;
use bloc_num::linalg::trilaterate;
use bloc_num::P2;

/// Configuration of the RSSI baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RssiConfig {
    /// Path-loss exponent `n` (2 = free space; 2.5–4 indoors).
    pub path_loss_exponent: f64,
    /// Reference amplitude `A₀` at 1 m. The `bloc-chan` channel model uses
    /// amplitude `1/d`, so the matched value is 1.0.
    pub ref_amplitude: f64,
}

impl Default for RssiConfig {
    fn default() -> Self {
        Self {
            path_loss_exponent: 2.0,
            ref_amplitude: 1.0,
        }
    }
}

/// The estimated range from anchor `i`, metres.
pub fn estimate_range(data: &SoundingData, i: usize, config: &RssiConfig) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for band in &data.bands {
        for &h in &band.tag_to_anchor[i] {
            sum += h.abs();
            count += 1;
        }
    }
    if count == 0 || sum <= 0.0 {
        return None;
    }
    let mean_amp = sum / count as f64;
    Some((config.ref_amplitude / mean_amp).powf(2.0 / config.path_loss_exponent))
}

/// Localizes by trilaterating the per-anchor RSSI ranges. Returns `None`
/// with fewer than two ranges or a degenerate geometry.
pub fn localize(data: &SoundingData, config: &RssiConfig) -> Option<P2> {
    let anchors_ranges: Vec<(P2, f64)> = (0..data.anchors.len())
        .filter_map(|i| estimate_range(data, i, config).map(|r| (data.anchors[i].center(), r)))
        .collect();
    if anchors_ranges.len() < 2 {
        return None;
    }
    let centroid = anchors_ranges
        .iter()
        .fold(P2::ORIGIN, |acc, (p, _)| acc + *p)
        / anchors_ranges.len() as f64;
    trilaterate(centroid, &anchors_ranges, 1e-6, 100)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloc_chan::geometry::Room;
    use bloc_chan::materials::Material;
    use bloc_chan::sounder::{all_data_channels, Sounder, SounderConfig};
    use bloc_chan::{AnchorArray, Environment};
    use rand::{rngs::StdRng, SeedableRng};

    fn anchors(room: &Room) -> Vec<AnchorArray> {
        room.wall_midpoints()
            .iter()
            .zip(room.walls().iter())
            .enumerate()
            .map(|(i, (&m, w))| AnchorArray::centered(i, m, w.direction(), 4))
            .collect()
    }

    #[test]
    fn free_space_ranges_are_accurate() {
        let room = Room::new(5.0, 6.0);
        let env = Environment::free_space();
        let anchors = anchors(&room);
        let sounder = Sounder::new(&env, &anchors, SounderConfig::default());
        let mut rng = StdRng::seed_from_u64(51);
        let tag = P2::new(2.0, 3.0);
        let data = sounder.sound(tag, &all_data_channels(), &mut rng);
        for (i, anchor) in anchors.iter().enumerate() {
            let r = estimate_range(&data, i, &RssiConfig::default()).unwrap();
            let truth = tag.dist(anchor.center());
            assert!((r - truth).abs() < 0.1, "anchor {i}: range {r} vs {truth}");
        }
    }

    #[test]
    fn free_space_localization_works() {
        let room = Room::new(5.0, 6.0);
        let env = Environment::free_space();
        let anchors = anchors(&room);
        let sounder = Sounder::new(&env, &anchors, SounderConfig::default());
        let mut rng = StdRng::seed_from_u64(52);
        let tag = P2::new(3.4, 2.1);
        let data = sounder.sound(tag, &all_data_channels(), &mut rng);
        let est = localize(&data, &RssiConfig::default()).unwrap();
        assert!(
            est.dist(tag) < 0.3,
            "free-space RSSI error {}",
            est.dist(tag)
        );
    }

    #[test]
    fn multipath_breaks_rssi_ranging() {
        // The paper's §2.2 argument: fading corrupts |h|; RSSI ranges in a
        // reflective room are much worse than in free space.
        let room = Room::new(5.0, 6.0);
        let anchors = anchors(&room);
        let mut rng = StdRng::seed_from_u64(53);
        let env = Environment::in_room(room)
            .with_walls(Material::metal(), &mut rng)
            .unwrap();
        let sounder = Sounder::new(&env, &anchors, SounderConfig::default());
        let mut errs = Vec::new();
        for k in 0..6 {
            let tag = P2::new(1.0 + 0.5 * k as f64, 1.5 + 0.6 * k as f64 % 4.0);
            let data = sounder.sound(tag, &all_data_channels(), &mut rng);
            if let Some(est) = localize(&data, &RssiConfig::default()) {
                errs.push(est.dist(tag));
            }
        }
        let med = bloc_num::stats::median(&errs);
        assert!(
            med > 0.4,
            "RSSI in multipath should err ≫ free space, got {med}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        let room = Room::new(5.0, 6.0);
        let data = SoundingData {
            bands: Vec::new(),
            anchors: anchors(&room),
        };
        assert!(estimate_range(&data, 0, &RssiConfig::default()).is_none());
        assert!(localize(&data, &RssiConfig::default()).is_none());
    }
}
