//! The comparison systems of the paper's evaluation.
//!
//! * [`aoa`] — AoA-combining triangulation, "the state-of-the-art in
//!   localization" the paper compares against (§7/§8.2, built in the style
//!   of SpotFi/ArrayTrack).
//! * [`rssi`] — log-distance RSSI trilateration, the pre-CSI status quo
//!   for BLE (§2.2, §9.2); included for context and used by the examples.
//!
//! The third baseline — shortest-distance peak picking in place of the
//! entropy score (§8.7) — shares BLoc's whole pipeline and lives in
//! [`crate::localizer::BlocLocalizer::localize_shortest_distance`].

pub mod aoa;
pub mod rssi;
