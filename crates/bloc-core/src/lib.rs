//! # bloc-core — CSI-based localization for BLE tags
//!
//! This crate is the Rust implementation of **BLoc** (Ayyalasomayajula,
//! Vasisht, Bharadia — *BLoc: CSI-based Accurate Localization for BLE
//! Tags*, CoNEXT 2018): the first channel-state-information localization
//! system for Bluetooth Low Energy. It consumes multi-band channel
//! soundings (from real anchors, or from the `bloc-chan` simulator) and
//! produces a tag position estimate.
//!
//! The pipeline, module by module:
//!
//! 1. [`correction`] — cancel the per-hop oscillator phase offsets by
//!    combining the three measurements each slave anchor overhears:
//!    `α^f_ij = ĥ^f_ij · Ĥ^{f*}_i0 · ĥ^{f*}_00` (paper Eq. 10). The result
//!    encodes *relative* distances `d^ij_T − d^00_T − d^{i0}_{00}`
//!    (Eq. 14) with no random phases left.
//! 2. [`likelihood`] — map the corrected channels onto a 2-D spatial
//!    likelihood per anchor (Eq. 17: joint AoA + relative-distance,
//!    hyperbolic contours) and sum across anchors.
//! 3. [`multipath`] — extract the likelihood peaks and score each with
//!    `s_x = p_x · e^{bH − aΣ_i d_i}` (Eq. 18), where `H` is the spatial
//!    (neg)entropy in a 7×7 circular window: direct paths are peaky,
//!    scattered reflections are spread out. The best-scoring peak is the
//!    tag.
//! 4. [`localizer`] — the end-to-end [`localizer::BlocLocalizer`].
//!
//! [`baselines`] implements the comparison systems of the paper's
//! evaluation: AoA-combining triangulation (§8.2), the shortest-distance
//! peak picker (§8.7), and an RSSI log-distance trilateration for context
//! (§2.2). Around the pipeline, [`tracker`] follows moving tags with a
//! constant-velocity Kalman filter over successive fixes, and
//! [`diagnostics`] validates incoming soundings before compute is spent
//! on them. The pipeline is degradation-aware: lost measurements are
//! masked rather than propagated, failures are typed
//! ([`error::LocalizeError`]), and every estimate carries an
//! [`error::DegradationReport`] of what was discarded.
//!
//! ## Quickstart
//!
//! ```
//! use bloc_chan::{AnchorArray, Environment, Sounder, SounderConfig};
//! use bloc_chan::geometry::Room;
//! use bloc_chan::materials::Material;
//! use bloc_core::localizer::{BlocConfig, BlocLocalizer};
//! use bloc_num::P2;
//! use rand::SeedableRng;
//!
//! // A 5 m × 6 m room with reflective walls and 4 anchors at the wall
//! // midpoints — the paper's deployment.
//! let room = Room::new(5.0, 6.0);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let env = Environment::in_room(room)
//!     .with_walls(Material::concrete(), &mut rng)
//!     .unwrap();
//! let anchors: Vec<AnchorArray> = room
//!     .wall_midpoints()
//!     .iter()
//!     .zip(room.walls().iter())
//!     .enumerate()
//!     .map(|(i, (&m, w))| AnchorArray::centered(i, m, w.direction(), 4))
//!     .collect();
//!
//! // Sound all 37 data channels from a tag position…
//! let sounder = Sounder::new(&env, &anchors, SounderConfig::default());
//! let tag = P2::new(1.8, 2.4);
//! let data = sounder.sound(tag, &bloc_chan::sounder::all_data_channels(), &mut rng);
//!
//! // …and localize.
//! let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));
//! let estimate = localizer.localize(&data).expect("non-degenerate sounding");
//! assert!(estimate.position.dist(tag) < 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod correction;
pub mod diagnostics;
pub mod engine;
pub mod error;
pub mod fallback;
pub mod fleet;
pub mod hierarchical;
pub mod likelihood;
pub mod localizer;
pub mod multipath;
pub mod runtime;
pub mod tracker;

pub use error::{DeferReason, DegradationReport, LocalizeError};
pub use fallback::{
    EstimateMode, FallbackConfig, FallbackError, FallbackStack, FingerprintDb, FusionPolicy,
    FusionWeights, PacketCountModel,
};
pub use fleet::{
    BatchReport, FleetConfig, FleetDriver, FleetSupervisor, ShedReason, ShedRound, SiteId,
    SiteSpec, SiteTransition, TagId, TagRound, TagRoundOutcome, TagTransition,
};
pub use hierarchical::{
    EscapeReason, HierarchicalConfig, HierarchicalEstimate, HierarchicalFusedFix,
    HierarchicalLocalizer,
};
pub use localizer::{BlocConfig, BlocLocalizer, Estimate};
pub use runtime::{
    BreakerState, BreakerTransition, HopMonitor, RetryPolicy, RoundFix, RoundOutcome,
    RuntimeConfig, SessionSupervisor,
};
