//! Tag tracking across successive fixes: a constant-velocity Kalman
//! filter in the plane.
//!
//! The paper localizes a static tag per measurement burst, and notes that
//! BLE "hops through all channels 40 times every second" (§6) — so a
//! moving tag yields a dense stream of fixes. Applications from the
//! paper's introduction (pet tracking, factory-floor automation) need the
//! *track*, not isolated fixes. This module provides the standard
//! estimator for that job: a 4-state (position + velocity)
//! constant-velocity Kalman filter consuming BLoc position estimates.
//!
//! The filter is deliberately self-contained (4×4 covariance updates
//! written out — no linear-algebra dependency) and handles missed fixes
//! by predicting through them.

use bloc_num::P2;

/// Tracker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrackerConfig {
    /// Process-noise intensity: the variance of white acceleration,
    /// (m/s²)². Larger values follow manoeuvres faster but smooth less.
    pub accel_noise: f64,
    /// Measurement noise standard deviation of a BLoc fix, metres.
    /// BLoc's ~0.9 m median error ⇒ ~0.8–1.0 m is the right magnitude.
    pub fix_sigma_m: f64,
    /// Innovation gate in Mahalanobis σ units (see [`Tracker::offer`]):
    /// a fix whose normalized innovation exceeds the velocity-scaled
    /// bound is rejected instead of updating the filter. `INFINITY`
    /// disables gating.
    pub gate_sigma: f64,
    /// Hysteresis depth K: after this many *consecutive* gate
    /// rejections, the tag is assumed to have genuinely moved and the
    /// filter re-initializes at the offending fix (re-acquisition).
    pub reacquire_after: usize,
    /// Coasting horizon, in consecutive fix-less rounds (coasts and
    /// degraded offers — anything that is not an accepted native fix).
    /// Beyond it, every further coast multiplies the covariance by
    /// [`TrackerConfig::coast_widen_factor`] on top of the CV prediction:
    /// the motion model's own inflation understates how little we know
    /// after seconds without evidence.
    pub coast_widen_after: usize,
    /// Per-coast covariance multiplier applied beyond the widening
    /// horizon (> 1).
    pub coast_widen_factor: f64,
    /// Hard lock horizon: at this many consecutive fix-less rounds the
    /// track is dropped entirely (`state()` becomes `None`, velocity is
    /// forgotten) — a stale extrapolation is worse than an honest "no
    /// track". The next fix re-initializes.
    pub coast_drop_after: usize,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            accel_noise: 1.0,
            fix_sigma_m: 0.9,
            gate_sigma: 4.0,
            reacquire_after: 3,
            coast_widen_after: 25,
            coast_widen_factor: 1.5,
            coast_drop_after: 100,
        }
    }
}

/// State estimate: position and velocity with their standard deviations.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrackState {
    /// Estimated position, metres.
    pub position: P2,
    /// Estimated velocity, metres/second.
    pub velocity: P2,
    /// 1-σ position uncertainty, metres (per axis, averaged).
    pub position_sigma: f64,
}

/// A constant-velocity Kalman tracker over 2-D fixes.
///
/// The x and y axes are independent under the CV model, so the filter is
/// implemented as two identical 2-state (position, velocity) filters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tracker {
    config: TrackerConfig,
    axis: Option<[AxisFilter; 2]>,
    /// Consecutive fixes rejected by the innovation gate (hysteresis
    /// state for re-acquisition).
    rejected_streak: usize,
    /// Consecutive rounds without an accepted *native* fix (coasts and
    /// degraded offers) — the bounded-coasting horizon state.
    fixless_streak: usize,
}

/// What [`Tracker::offer`] did with one fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FixDisposition {
    /// The fix passed the innovation gate (or initialized the filter)
    /// and updated the track.
    Accepted(TrackState),
    /// The fix failed the gate: the filter coasted through the step on
    /// its motion model and the fix was discarded.
    Rejected {
        /// The coasted state.
        state: TrackState,
        /// The fix's normalized innovation distance (σ units).
        mahalanobis: f64,
        /// The velocity-scaled bound it exceeded.
        bound: f64,
    },
    /// The fix failed the gate but completed a streak of
    /// `reacquire_after` consecutive rejections — the tag genuinely
    /// moved, so the filter re-initialized at this fix.
    Reacquired(TrackState),
}

impl FixDisposition {
    /// The track state after this disposition, whatever it was.
    pub fn state(&self) -> TrackState {
        match *self {
            Self::Accepted(s) | Self::Reacquired(s) => s,
            Self::Rejected { state, .. } => state,
        }
    }
}

/// One axis of the CV filter: state (p, v), covariance [[p00,p01],[p01,p11]].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct AxisFilter {
    p: f64,
    v: f64,
    c00: f64,
    c01: f64,
    c11: f64,
}

impl AxisFilter {
    fn init(measurement: f64, sigma: f64) -> Self {
        // Position known to measurement accuracy; velocity unknown.
        Self {
            p: measurement,
            v: 0.0,
            c00: sigma * sigma,
            c01: 0.0,
            c11: 4.0,
        }
    }

    /// Predict forward by `dt` seconds with acceleration intensity `q`.
    fn predict(&mut self, dt: f64, q: f64) {
        self.p += self.v * dt;
        // F·C·Fᵀ for F = [[1, dt], [0, 1]]
        let c00 = self.c00 + dt * (self.c01 + self.c01) + dt * dt * self.c11;
        let c01 = self.c01 + dt * self.c11;
        let c11 = self.c11;
        // + white-acceleration process noise (discretized)
        let dt2 = dt * dt;
        self.c00 = c00 + q * dt2 * dt2 / 4.0;
        self.c01 = c01 + q * dt2 * dt / 2.0;
        self.c11 = c11 + q * dt2;
    }

    /// Measurement update with a position observation of variance `r`.
    fn update(&mut self, z: f64, r: f64) {
        let s = self.c00 + r;
        let k0 = self.c00 / s;
        let k1 = self.c01 / s;
        let innov = z - self.p;
        self.p += k0 * innov;
        self.v += k1 * innov;
        // Joseph-free standard form: C ← (I − K·H)·C
        let c00 = (1.0 - k0) * self.c00;
        let c01 = (1.0 - k0) * self.c01;
        let c11 = self.c11 - k1 * self.c01;
        self.c00 = c00;
        self.c01 = c01;
        self.c11 = c11;
    }
}

impl Tracker {
    /// A tracker awaiting its first fix.
    pub fn new(config: TrackerConfig) -> Self {
        Self {
            config,
            axis: None,
            rejected_streak: 0,
            fixless_streak: 0,
        }
    }

    /// True until the first fix arrives.
    pub fn is_initializing(&self) -> bool {
        self.axis.is_none()
    }

    /// Feeds one fix taken `dt` seconds after the previous call (use the
    /// hop/burst period; must be positive). Returns the filtered state.
    pub fn push(&mut self, fix: P2, dt: f64) -> TrackState {
        assert!(dt > 0.0, "time step must be positive");
        self.fixless_streak = 0;
        let r = self.config.fix_sigma_m * self.config.fix_sigma_m;
        match &mut self.axis {
            None => {
                self.axis = Some([
                    AxisFilter::init(fix.x, self.config.fix_sigma_m),
                    AxisFilter::init(fix.y, self.config.fix_sigma_m),
                ]);
            }
            Some(ax) => {
                for (f, z) in ax.iter_mut().zip([fix.x, fix.y]) {
                    f.predict(dt, self.config.accel_noise);
                    f.update(z, r);
                }
            }
        }
        self.state().expect("initialized above")
    }

    /// Feeds one fix through the innovation gate. Unlike [`Tracker::push`]
    /// (which trusts every fix), `offer` first predicts the filter
    /// forward and measures the fix's innovation in Mahalanobis units,
    /// `d = √(Σ_axis innov²/s)` with `s = c00_pred + r`. The gate bound
    /// is velocity-scaled — `gate_sigma · (1 + |v|·dt/σ_fix)` — so a
    /// fast-moving track legitimately tolerates larger jumps per step. A
    /// rejected fix coasts the filter; `reacquire_after` consecutive
    /// rejections re-initialize it at the latest fix (hysteresis: a tag
    /// that truly teleported re-acquires within K rounds instead of
    /// being gated forever).
    pub fn offer(&mut self, fix: P2, dt: f64) -> FixDisposition {
        assert!(dt > 0.0, "time step must be positive");
        let Some(ax) = &mut self.axis else {
            self.rejected_streak = 0;
            return FixDisposition::Accepted(self.push(fix, dt));
        };
        let r = self.config.fix_sigma_m * self.config.fix_sigma_m;
        // Predict (time passes regardless of what we decide about the fix).
        for f in ax.iter_mut() {
            f.predict(dt, self.config.accel_noise);
        }
        let mut d_sq = 0.0;
        let mut speed_sq = 0.0;
        for (f, z) in ax.iter().zip([fix.x, fix.y]) {
            let s = f.c00 + r;
            let innov = z - f.p;
            d_sq += innov * innov / s;
            speed_sq += f.v * f.v;
        }
        let mahalanobis = d_sq.sqrt();
        let bound = self.config.gate_sigma * (1.0 + speed_sq.sqrt() * dt / self.config.fix_sigma_m);
        if mahalanobis <= bound {
            for (f, z) in ax.iter_mut().zip([fix.x, fix.y]) {
                f.update(z, r);
            }
            self.rejected_streak = 0;
            self.fixless_streak = 0;
            return FixDisposition::Accepted(self.state().expect("initialized"));
        }
        self.rejected_streak += 1;
        if self.rejected_streak >= self.config.reacquire_after {
            self.axis = Some([
                AxisFilter::init(fix.x, self.config.fix_sigma_m),
                AxisFilter::init(fix.y, self.config.fix_sigma_m),
            ]);
            self.rejected_streak = 0;
            self.fixless_streak = 0;
            return FixDisposition::Reacquired(self.state().expect("initialized"));
        }
        FixDisposition::Rejected {
            state: self.state().expect("initialized"),
            mahalanobis,
            bound,
        }
    }

    /// Consecutive gate rejections so far (resets on accept/re-acquire).
    pub fn rejected_streak(&self) -> usize {
        self.rejected_streak
    }

    /// Advances time without a fix (the tag's burst was lost): predict
    /// only, bounded by the coasting horizon — beyond
    /// `coast_widen_after` consecutive fix-less rounds each coast also
    /// multiplies the covariance by `coast_widen_factor`, and at
    /// `coast_drop_after` the lock is dropped entirely (returns `None`;
    /// the next fix re-initializes). No-op before initialization.
    pub fn coast(&mut self, dt: f64) -> Option<TrackState> {
        assert!(dt > 0.0, "time step must be positive");
        self.axis?;
        self.fixless_streak += 1;
        if self.fixless_streak >= self.config.coast_drop_after {
            self.axis = None;
            bloc_obs::counter("track.lock_dropped").inc();
            return None;
        }
        let widen = self.fixless_streak >= self.config.coast_widen_after;
        let factor = self.config.coast_widen_factor.max(1.0);
        if let Some(ax) = self.axis.as_mut() {
            for f in ax.iter_mut() {
                f.predict(dt, self.config.accel_noise);
                if widen {
                    f.c00 *= factor;
                    f.c01 *= factor;
                    f.c11 *= factor;
                }
            }
        }
        self.state()
    }

    /// Feeds a *degraded* (fallback-estimated) fix: gated and fused like
    /// [`Tracker::offer`], but with the measurement variance taken from
    /// the fallback's own `sigma_m` (floored at `fix_sigma_m`) so a
    /// metre-class estimate nudges the track instead of yanking it.
    /// Degraded fixes do **not** reset the fix-less streak — the coasting
    /// horizon keeps counting, and once it expires the track re-anchors
    /// on the degraded fix with the wide sigma (reported as
    /// [`FixDisposition::Reacquired`]: velocity is forgotten).
    pub fn offer_degraded(&mut self, fix: P2, dt: f64, sigma_m: f64) -> FixDisposition {
        assert!(dt > 0.0, "time step must be positive");
        let sigma = if sigma_m.is_finite() {
            sigma_m.max(self.config.fix_sigma_m)
        } else {
            self.config.fix_sigma_m
        };
        let r = sigma * sigma;
        self.fixless_streak += 1;
        if self.axis.is_none() {
            // A degraded fix can start a track (with its wide sigma),
            // but it is still not a native fix: the streak keeps counting.
            self.axis = Some([
                AxisFilter::init(fix.x, sigma),
                AxisFilter::init(fix.y, sigma),
            ]);
            self.rejected_streak = 0;
            return FixDisposition::Accepted(self.state().expect("initialized above"));
        }
        if self.fixless_streak >= self.config.coast_drop_after {
            // Horizon expired under sustained degraded fixes: drop the
            // stale velocity and re-anchor on this fix.
            self.axis = Some([
                AxisFilter::init(fix.x, sigma),
                AxisFilter::init(fix.y, sigma),
            ]);
            self.rejected_streak = 0;
            self.fixless_streak = 0;
            bloc_obs::counter("track.lock_dropped").inc();
            return FixDisposition::Reacquired(self.state().expect("initialized above"));
        }
        let Some(ax) = self.axis.as_mut() else {
            return FixDisposition::Accepted(self.push(fix, dt));
        };
        for f in ax.iter_mut() {
            f.predict(dt, self.config.accel_noise);
        }
        let mut d_sq = 0.0;
        let mut speed_sq = 0.0;
        for (f, z) in ax.iter().zip([fix.x, fix.y]) {
            let s = f.c00 + r;
            let innov = z - f.p;
            d_sq += innov * innov / s;
            speed_sq += f.v * f.v;
        }
        let mahalanobis = d_sq.sqrt();
        let bound = self.config.gate_sigma * (1.0 + speed_sq.sqrt() * dt / sigma);
        if mahalanobis <= bound {
            for (f, z) in ax.iter_mut().zip([fix.x, fix.y]) {
                f.update(z, r);
            }
            return FixDisposition::Accepted(self.state().expect("initialized"));
        }
        FixDisposition::Rejected {
            state: self.state().expect("initialized"),
            mahalanobis,
            bound,
        }
    }

    /// Consecutive rounds without an accepted native fix (the coasting
    /// horizon state; resets on accepted/re-acquired native fixes).
    pub fn fixless_streak(&self) -> usize {
        self.fixless_streak
    }

    /// The radius (metres) a seeded likelihood search must cover so the
    /// next fix cannot land outside it without also failing the
    /// innovation gate: the gate bound in position units
    /// (`gate_sigma · position_sigma`) plus the distance the tag can
    /// travel in `dt` at the estimated speed. Coast widening inflates
    /// `position_sigma`, so the radius grows with every fix-less round
    /// exactly as the gate does. `None` before the first fix (or after a
    /// dropped lock) — there is nothing to seed from.
    pub fn search_radius(&self, dt: f64) -> Option<f64> {
        let s = self.state()?;
        Some(self.config.gate_sigma * s.position_sigma + s.velocity.norm() * dt.max(0.0))
    }

    /// The current estimate, if initialized.
    pub fn state(&self) -> Option<TrackState> {
        let ax = self.axis.as_ref()?;
        Some(TrackState {
            position: P2::new(ax[0].p, ax[1].p),
            velocity: P2::new(ax[0].v, ax[1].v),
            position_sigma: ((ax[0].c00 + ax[1].c00) / 2.0).sqrt(),
        })
    }
}

/// A localizer and a tracker glued into one streaming consumer of
/// soundings — the shape an application actually deploys. Each sounding
/// is localized through the shared [`crate::engine::LikelihoodEngine`]
/// (so per-deployment steering geometry is computed once for the whole
/// track, not once per burst) and the resulting fix feeds the Kalman
/// filter; soundings that cannot support a fix coast the filter instead
/// of dropping the time step.
#[derive(Debug, Clone)]
pub struct TrackingPipeline {
    localizer: crate::localizer::BlocLocalizer,
    hier: Option<crate::hierarchical::HierarchicalLocalizer>,
    tracker: Tracker,
}

impl TrackingPipeline {
    /// Builds a pipeline from its two halves.
    pub fn new(localizer: crate::localizer::BlocLocalizer, config: TrackerConfig) -> Self {
        Self {
            localizer,
            hier: None,
            tracker: Tracker::new(config),
        }
    }

    /// Enables the hierarchical coarse-to-fine solver: rounds with a live
    /// track localize on a fine patch seeded at the track prediction
    /// (bounded by [`Tracker::search_radius`]); rounds without one run
    /// the full coarse→fine flow. The hierarchical localizer shares this
    /// pipeline's engine and steering cache.
    pub fn with_hierarchical(mut self, config: crate::hierarchical::HierarchicalConfig) -> Self {
        self.hier = Some(crate::hierarchical::HierarchicalLocalizer::new(
            self.localizer.clone(),
            config,
        ));
        self
    }

    /// The hierarchical solver, when enabled.
    pub fn hierarchical(&self) -> Option<&crate::hierarchical::HierarchicalLocalizer> {
        self.hier.as_ref()
    }

    /// The grid fallback priors should be evaluated on for this
    /// pipeline's rounds: the coarse candidate-selection grid when the
    /// hierarchy is enabled (priors enter at the coarse level), the full
    /// fine grid otherwise.
    pub fn prior_grid(&self) -> bloc_num::GridSpec {
        self.hier
            .as_ref()
            .map(|h| h.coarse_spec())
            .unwrap_or(self.localizer.config().grid)
    }

    /// Localizes one sounding the way this pipeline is configured to:
    /// dense when the hierarchy is off; seeded from the current track
    /// (with the gate-derived search radius for a round `dt` seconds
    /// after the last) when a track is live; full coarse→fine otherwise.
    /// Does **not** feed the tracker — callers on their own schedule
    /// (the runtime supervisor) gate and offer the fix themselves.
    ///
    /// # Errors
    ///
    /// The [`crate::error::LocalizeError`] of the failed fix.
    pub fn localize_round(
        &self,
        data: &bloc_chan::sounder::SoundingData,
        dt: f64,
    ) -> Result<crate::localizer::Estimate, crate::error::LocalizeError> {
        let Some(h) = &self.hier else {
            return self.localizer.localize(data);
        };
        let seed = self
            .tracker
            .state()
            .zip(self.tracker.search_radius(dt.max(0.0)));
        let est = match seed {
            Some((s, radius)) => h.localize_seeded(data, s.position, radius)?,
            None => h.localize(data)?,
        };
        Ok(est.estimate)
    }

    /// Consumes one sounding taken `dt` seconds after the previous call.
    /// On a successful fix the filter updates and the new state is
    /// returned; on a localization failure the filter coasts through the
    /// gap and the typed error is returned (with the coasted state still
    /// available via [`Self::state`]).
    ///
    /// # Errors
    ///
    /// The [`crate::error::LocalizeError`] of the failed fix.
    pub fn push_sounding(
        &mut self,
        data: &bloc_chan::sounder::SoundingData,
        dt: f64,
    ) -> Result<TrackState, crate::error::LocalizeError> {
        match self.localize_round(data, dt) {
            Ok(est) => Ok(self.offer_fix(est.position, dt).state()),
            Err(e) => {
                self.tracker.coast(dt);
                Err(e)
            }
        }
    }

    /// Feeds one already-localized fix through the tracker's innovation
    /// gate (see [`Tracker::offer`]), recording `track.gated` /
    /// `track.reacquired` on the global registry. This is the entry the
    /// runtime supervisor uses when it localizes on its own schedule.
    pub fn offer_fix(&mut self, fix: P2, dt: f64) -> FixDisposition {
        let disposition = self.tracker.offer(fix, dt);
        match disposition {
            FixDisposition::Rejected { .. } => bloc_obs::counter("track.gated").inc(),
            FixDisposition::Reacquired(_) => bloc_obs::counter("track.reacquired").inc(),
            FixDisposition::Accepted(_) => {}
        }
        disposition
    }

    /// Feeds a degraded (fallback-estimated) fix through
    /// [`Tracker::offer_degraded`], recording `track.degraded` (and
    /// `track.gated` on rejection) on the global registry.
    pub fn offer_degraded_fix(&mut self, fix: P2, dt: f64, sigma_m: f64) -> FixDisposition {
        bloc_obs::counter("track.degraded").inc();
        let disposition = self.tracker.offer_degraded(fix, dt, sigma_m);
        if matches!(disposition, FixDisposition::Rejected { .. }) {
            bloc_obs::counter("track.gated").inc();
        }
        disposition
    }

    /// Coasts the tracker through a fix-less step (deferred round, lost
    /// burst handled outside [`Self::push_sounding`]).
    pub fn coast(&mut self, dt: f64) -> Option<TrackState> {
        self.tracker.coast(dt)
    }

    /// The tracker half.
    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }

    /// The current track estimate, if any fix has arrived.
    pub fn state(&self) -> Option<TrackState> {
        self.tracker.state()
    }

    /// The localizer half (and through it the shared likelihood engine).
    pub fn localizer(&self) -> &crate::localizer::BlocLocalizer {
        &self.localizer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn noisy(rng: &mut StdRng, p: P2, sigma: f64) -> P2 {
        let g = |rng: &mut StdRng| {
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        P2::new(p.x + sigma * g(rng), p.y + sigma * g(rng))
    }

    #[test]
    fn converges_on_static_tag() {
        let mut rng = StdRng::seed_from_u64(1);
        let truth = P2::new(2.0, 3.0);
        let mut tracker = Tracker::new(TrackerConfig {
            accel_noise: 0.05,
            fix_sigma_m: 0.9,
            ..Default::default()
        });
        let mut last = TrackState {
            position: P2::ORIGIN,
            velocity: P2::ORIGIN,
            position_sigma: f64::INFINITY,
        };
        // Judge convergence on the time-averaged post-burn-in estimate:
        // with accel_noise > 0 the steady-state error of any *single*
        // realization stays comparable to position_sigma, so the final
        // fix alone is a coin flip at tight thresholds.
        let mut settled = P2::ORIGIN;
        let mut settled_n = 0.0;
        for k in 0..200 {
            last = tracker.push(noisy(&mut rng, truth, 0.9), 0.1);
            if k >= 100 {
                settled += last.position;
                settled_n += 1.0;
            }
        }
        let settled = P2::new(settled.x / settled_n, settled.y / settled_n);
        assert!(settled.dist(truth) < 0.3, "converged to {settled}");
        assert!(last.velocity.norm() < 0.3);
        assert!(
            last.position_sigma < 0.5,
            "uncertainty must shrink: {}",
            last.position_sigma
        );
    }

    #[test]
    fn tracks_constant_velocity() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = P2::new(0.5, -0.2); // m/s
        let mut tracker = Tracker::new(TrackerConfig {
            accel_noise: 0.1,
            fix_sigma_m: 0.9,
            ..Default::default()
        });
        let mut state = None;
        for k in 0..150 {
            let truth = P2::new(0.0, 5.0) + v * (k as f64 * 0.1);
            state = Some(tracker.push(noisy(&mut rng, truth, 0.9), 0.1));
        }
        let s = state.unwrap();
        let truth_final = P2::new(0.0, 5.0) + v * (149.0 * 0.1);
        assert!(
            s.position.dist(truth_final) < 0.6,
            "pos {} vs {}",
            s.position,
            truth_final
        );
        assert!(
            (s.velocity - v).norm() < 0.25,
            "vel {:?} vs {:?}",
            s.velocity,
            v
        );
    }

    #[test]
    fn smoothing_beats_raw_fixes() {
        // The track's RMSE must be below the raw-fix RMSE on a static tag.
        let mut rng = StdRng::seed_from_u64(3);
        let truth = P2::new(1.0, 1.0);
        let mut tracker = Tracker::new(TrackerConfig {
            accel_noise: 0.02,
            fix_sigma_m: 0.9,
            ..Default::default()
        });
        let mut raw_sq = 0.0;
        let mut flt_sq = 0.0;
        let mut n = 0.0;
        for k in 0..300 {
            let fix = noisy(&mut rng, truth, 0.9);
            let s = tracker.push(fix, 0.1);
            if k >= 20 {
                raw_sq += fix.dist_sq(truth);
                flt_sq += s.position.dist_sq(truth);
                n += 1.0;
            }
        }
        let raw_rmse = (raw_sq / n).sqrt();
        let flt_rmse = (flt_sq / n).sqrt();
        assert!(
            flt_rmse < 0.5 * raw_rmse,
            "filter ({flt_rmse}) should beat raw fixes ({raw_rmse}) by a lot"
        );
    }

    #[test]
    fn coasting_grows_uncertainty() {
        let mut tracker = Tracker::new(TrackerConfig::default());
        tracker.push(P2::new(0.0, 0.0), 0.1);
        let before = tracker.state().unwrap().position_sigma;
        for _ in 0..20 {
            tracker.coast(0.1);
        }
        let after = tracker.state().unwrap().position_sigma;
        assert!(
            after > before,
            "coasting must inflate σ: {before} → {after}"
        );
    }

    #[test]
    fn coast_before_init_is_none() {
        let mut tracker = Tracker::new(TrackerConfig::default());
        assert!(tracker.is_initializing());
        assert!(tracker.coast(0.1).is_none());
        tracker.push(P2::new(1.0, 2.0), 0.1);
        assert!(!tracker.is_initializing());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_rejected() {
        Tracker::new(TrackerConfig::default()).push(P2::ORIGIN, 0.0);
    }

    #[test]
    fn coasting_horizon_widens_then_drops_the_lock() {
        // Pin the horizon exactly: with drop_after = 6 the lock survives
        // 5 consecutive coasts and dies on the 6th.
        let cfg = TrackerConfig {
            coast_widen_after: 3,
            coast_widen_factor: 2.0,
            coast_drop_after: 6,
            ..Default::default()
        };
        let mut tracker = Tracker::new(cfg);
        tracker.push(P2::new(2.0, 2.0), 0.1);

        let mut sigmas = Vec::new();
        for _ in 0..5 {
            let s = tracker.coast(0.1);
            assert!(s.is_some(), "lock must survive below the horizon");
            sigmas.push(s.unwrap().position_sigma);
        }
        assert_eq!(tracker.fixless_streak(), 5);
        // Beyond coast_widen_after the per-step inflation must exceed the
        // plain CV prediction's: the widened step grows σ² by more than
        // the factor alone would.
        let plain_growth = sigmas[1] / sigmas[0]; // streak 1→2, unwidened
        let widened_growth = sigmas[3] / sigmas[2]; // streak 3→4, widened
        assert!(
            widened_growth > plain_growth * 1.2,
            "widening must accelerate σ growth: {plain_growth} vs {widened_growth}"
        );

        // The 6th consecutive coast hits the drop horizon.
        assert!(tracker.coast(0.1).is_none(), "lock must drop at horizon");
        assert!(tracker.is_initializing());

        // A fresh fix re-initializes and resets the streak.
        tracker.push(P2::new(2.0, 2.0), 0.1);
        assert_eq!(tracker.fixless_streak(), 0);
        assert!(tracker.coast(0.1).is_some());
    }

    #[test]
    fn native_fix_resets_coasting_horizon() {
        let cfg = TrackerConfig {
            coast_drop_after: 4,
            ..Default::default()
        };
        let mut tracker = Tracker::new(cfg);
        tracker.push(P2::new(1.0, 1.0), 0.1);
        for _ in 0..3 {
            assert!(tracker.coast(0.1).is_some());
        }
        // An accepted native fix resets the horizon: 3 more coasts are
        // again survivable.
        assert!(matches!(
            tracker.offer(P2::new(1.0, 1.0), 0.1),
            FixDisposition::Accepted(_)
        ));
        assert_eq!(tracker.fixless_streak(), 0);
        for _ in 0..3 {
            assert!(tracker.coast(0.1).is_some());
        }
        assert!(tracker.coast(0.1).is_none());
    }

    #[test]
    fn degraded_offers_count_toward_horizon_and_reanchor() {
        let cfg = TrackerConfig {
            coast_drop_after: 3,
            ..Default::default()
        };
        let mut tracker = Tracker::new(cfg);

        // Before initialization a degraded fix starts the track.
        let d = tracker.offer_degraded(P2::new(1.0, 1.0), 0.1, 2.0);
        assert!(matches!(d, FixDisposition::Accepted(_)));
        // Its wide sigma must be reflected in the state.
        assert!(tracker.state().unwrap().position_sigma > 1.5);

        // Degraded fixes do not reset the horizon: the third fix-less
        // round re-anchors (velocity forgotten → Reacquired).
        assert!(matches!(
            tracker.offer_degraded(P2::new(1.1, 1.0), 0.1, 2.0),
            FixDisposition::Accepted(_) | FixDisposition::Rejected { .. }
        ));
        let d3 = tracker.offer_degraded(P2::new(1.2, 1.0), 0.1, 2.0);
        assert!(
            matches!(d3, FixDisposition::Reacquired(_)),
            "horizon expiry under degraded fixes must re-anchor: {d3:?}"
        );
        assert_eq!(tracker.fixless_streak(), 0);
    }

    #[test]
    fn pipeline_tracks_a_moving_tag_and_reuses_geometry() {
        use crate::localizer::{BlocConfig, BlocLocalizer};
        use bloc_chan::geometry::Room;
        use bloc_chan::sounder::{all_data_channels, Sounder, SounderConfig};
        use bloc_chan::{AnchorArray, Environment};

        let room = Room::new(5.0, 6.0);
        let env = Environment::free_space();
        let anchors: Vec<AnchorArray> = room
            .wall_midpoints()
            .iter()
            .zip(room.walls().iter())
            .enumerate()
            .map(|(i, (&m, w))| AnchorArray::centered(i, m, w.direction(), 4))
            .collect();
        let sounder = Sounder::new(
            &env,
            &anchors,
            SounderConfig {
                antenna_phase_err_std: 0.0,
                ..Default::default()
            },
        );
        let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));
        let mut pipeline = TrackingPipeline::new(localizer, TrackerConfig::default());
        assert!(pipeline.state().is_none());

        let mut rng = StdRng::seed_from_u64(51);
        let v = P2::new(0.3, 0.15);
        let mut last = None;
        for k in 0..12 {
            let truth = P2::new(1.2, 1.5) + v * (k as f64 * 0.5);
            let data = sounder.sound(truth, &all_data_channels(), &mut rng);
            last = Some(pipeline.push_sounding(&data, 0.5).unwrap());
        }
        let truth_final = P2::new(1.2, 1.5) + v * (11.0 * 0.5);
        assert!(
            last.unwrap().position.dist(truth_final) < 0.6,
            "track {:?} vs {truth_final}",
            last
        );
        // One deployment, twelve soundings: the steering geometry was
        // built exactly once and served from the cache after that.
        assert_eq!(pipeline.localizer().engine().cache().len(), 1);
    }

    #[test]
    fn pipeline_coasts_through_failed_fixes() {
        use crate::localizer::{BlocConfig, BlocLocalizer};
        use bloc_chan::geometry::Room;
        use bloc_chan::sounder::SoundingData;

        let room = Room::new(5.0, 6.0);
        let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));
        let mut pipeline = TrackingPipeline::new(localizer, TrackerConfig::default());

        // Failure before any fix: typed error, still uninitialized.
        let empty = SoundingData {
            bands: Vec::new(),
            anchors: Vec::new(),
        };
        assert!(pipeline.push_sounding(&empty, 0.1).is_err());
        assert!(pipeline.state().is_none());

        // Initialize by hand through the tracker half, then fail again:
        // the filter coasts (σ grows) instead of dropping the step.
        pipeline.tracker.push(P2::new(1.0, 1.0), 0.1);
        let before = pipeline.state().unwrap().position_sigma;
        assert!(pipeline.push_sounding(&empty, 0.5).is_err());
        let after = pipeline.state().unwrap().position_sigma;
        assert!(after > before, "coast must inflate σ: {before} → {after}");
    }

    #[test]
    fn covariance_stays_positive() {
        // Long alternating predict/update cycles must not drive the
        // covariance negative (numerical health).
        let mut tracker = Tracker::new(TrackerConfig {
            accel_noise: 5.0,
            fix_sigma_m: 0.1,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(4);
        tracker.push(P2::new(1.0, 1.0), 0.05); // initialize first
        for k in 0..1000 {
            if k % 7 == 0 {
                tracker.coast(0.05);
            } else {
                tracker.push(noisy(&mut rng, P2::new(1.0, 1.0), 0.1), 0.05);
            }
            let s = tracker.state().unwrap();
            assert!(s.position_sigma.is_finite() && s.position_sigma >= 0.0);
        }
    }
}
