//! Shared steering-cache concurrency: the fleet serves many tags off
//! one `SteeringCache`, so warm reads must survive breaker-driven
//! invalidation racing them, a cold key must be built exactly once no
//! matter how many tags ask at once, and the `cache.steering.*`
//! counters must conserve across the storm.
//!
//! This binary is the only one asserting *exact* `cache.steering`
//! hit/miss conservation, so it keeps a single test touching those
//! counters (tests within one binary share the process-global
//! registry).

use std::sync::{Arc, Barrier};
use std::thread;

use bloc_chan::geometry::Room;
use bloc_chan::AnchorArray;
use bloc_core::engine::SteeringCache;
use bloc_core::BlocConfig;

fn deployment() -> (Room, Vec<AnchorArray>) {
    let room = Room::new(5.0, 6.0);
    let anchors: Vec<AnchorArray> = room
        .wall_midpoints()
        .iter()
        .zip(room.walls().iter())
        .enumerate()
        .map(|(i, (&m, w))| AnchorArray::centered(i, m, w.direction(), 4))
        .collect();
    (room, anchors)
}

#[test]
fn warm_reads_survive_invalidation_and_rebuild_exactly_once() {
    let cache = SteeringCache::new();
    let (room, anchors) = deployment();
    let spec = BlocConfig::for_room(&room).grid;
    let master: Vec<f64> = anchors
        .iter()
        .map(|a| a.center().dist(anchors[0].center()))
        .collect();
    let base_hz = 2.402e9;
    let step_hz = 2.0e6;

    let hits0 = bloc_obs::counter("cache.steering.hits").get();
    let miss0 = bloc_obs::counter("cache.steering.misses").get();
    let inv0 = bloc_obs::counter("cache.steering.invalidations.breaker").get();

    // Phase 1: 8 readers hammer the same key while an invalidator
    // repeatedly retires it under the breaker cause. Every read must
    // return a structurally sound table (never a torn or half-built
    // one), whether it raced a hit, a rebuild, or an eviction.
    const READERS: usize = 8;
    const READS: usize = 200;
    const INVALIDATIONS: usize = 50;
    thread::scope(|s| {
        for _ in 0..READERS {
            s.spawn(|| {
                for _ in 0..READS {
                    let t = cache.tables(spec, &anchors, &master, base_hz, step_hz);
                    assert_eq!(t.spec(), spec, "steering table must match its key");
                    assert!(t.approx_bytes() > 0, "table must be fully built");
                }
            });
        }
        s.spawn(|| {
            for _ in 0..INVALIDATIONS {
                cache.invalidate_geometry_with_cause(&anchors, "breaker");
                thread::yield_now();
            }
        });
    });

    // Conservation: every read was either a hit or a (counted) build —
    // nothing double-counted, nothing lost in the race.
    let hits = bloc_obs::counter("cache.steering.hits").get() - hits0;
    let misses = bloc_obs::counter("cache.steering.misses").get() - miss0;
    let total = (READERS * READS) as u64;
    assert_eq!(
        hits + misses,
        total,
        "hits ({hits}) + misses ({misses}) must equal the {total} reads"
    );
    // A rebuild can only follow an invalidation (plus the initial cold
    // build); misses bound the thrash.
    assert!(
        misses >= 1 && misses <= INVALIDATIONS as u64 + 1,
        "misses ({misses}) must stay within the invalidation budget"
    );
    assert!(
        bloc_obs::counter("cache.steering.invalidations.breaker").get() - inv0
            >= INVALIDATIONS as u64,
        "every invalidation must be attributed to its cause"
    );

    // Phase 2: after one more invalidation, a stampede of concurrent
    // same-key readers must produce exactly one build — the lock is
    // held across the build, so latecomers block and share the Arc.
    cache.invalidate_geometry_with_cause(&anchors, "breaker");
    let miss1 = bloc_obs::counter("cache.steering.misses").get();
    let barrier = Arc::new(Barrier::new(READERS));
    let (cache_ref, anchors_ref, master_ref) = (&cache, &anchors, &master);
    let tables: Vec<_> = thread::scope(|s| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    cache_ref.tables(spec, anchors_ref, master_ref, base_hz, step_hz)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reader must not panic"))
            .collect()
    });
    assert!(
        tables.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])),
        "a cold-key stampede must share one build"
    );
    assert_eq!(
        bloc_obs::counter("cache.steering.misses").get() - miss1,
        1,
        "the stampede must rebuild exactly once"
    );
    assert_eq!(cache.len(), 1, "one deployment resident after the storm");
}
