//! Equivalence suite for the fast likelihood engine (ISSUE 3): every
//! layer — phasor recurrence, SoA channel layout, cached steering
//! geometry, parallel row evaluation — must reproduce the naive reference
//! implementation to ≤ 1e-9 relative error on randomized soundings,
//! including degraded ones, and thread count must never change a result.

use std::sync::Arc;

use bloc_chan::geometry::Room;
use bloc_chan::materials::Material;
use bloc_chan::sounder::{all_data_channels, Sounder, SounderConfig};
use bloc_chan::{AnchorArray, AnchorDropout, Environment, FaultPlan};
use bloc_core::correction::{correct, CorrectedChannels};
use bloc_core::engine::{BandPlan, LikelihoodEngine, SoaChannels};
use bloc_core::likelihood::{
    anchor_likelihood_reference, joint_likelihood, joint_likelihood_reference, AntennaCombining,
};
use bloc_num::{Grid2D, GridSpec, P2};
use rand::{rngs::StdRng, SeedableRng};

fn anchors(room: &Room) -> Vec<AnchorArray> {
    room.wall_midpoints()
        .iter()
        .zip(room.walls().iter())
        .enumerate()
        .map(|(i, (&m, w))| AnchorArray::centered(i, m, w.direction(), 4))
        .collect()
}

/// A coarse grid keeps the whole battery fast while still covering
/// thousands of cells.
fn spec(room: &Room) -> GridSpec {
    GridSpec::covering(
        P2::new(-0.5, -0.5),
        P2::new(room.width + 1.0, room.height + 1.0),
        0.2,
    )
}

fn corrected_for(
    env: &Environment,
    tag: P2,
    seed: u64,
    faults: Option<FaultPlan>,
) -> CorrectedChannels {
    let room = Room::new(5.0, 6.0);
    let deployment = anchors(&room);
    let mut sounder = Sounder::new(env, &deployment, SounderConfig::default());
    if let Some(plan) = faults {
        sounder = sounder.with_faults(plan);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    correct(&sounder.sound(tag, &all_data_channels(), &mut rng), true)
        .expect("sounding must correct")
}

/// Asserts `a` and `b` agree per cell to ≤ `tol` relative to the larger
/// grid's peak (the ISSUE's equivalence budget).
fn assert_grids_close(a: &Grid2D, b: &Grid2D, tol: f64, what: &str) {
    assert_eq!(a.spec(), b.spec());
    let peak = a
        .data()
        .iter()
        .chain(b.data())
        .fold(0.0f64, |m, &v| m.max(v.abs()));
    let scale = peak.max(f64::MIN_POSITIVE);
    for (k, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
        let rel = (x - y).abs() / scale;
        assert!(
            rel <= tol,
            "{what}: cell {k} differs by {rel:.3e} rel (lhs {x}, rhs {y}, peak {peak})"
        );
    }
}

fn environments(seed: u64) -> Vec<(&'static str, Environment)> {
    let room = Room::new(5.0, 6.0);
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        ("free_space", Environment::free_space()),
        (
            "concrete_room",
            Environment::in_room(room)
                .with_walls(Material::concrete(), &mut rng)
                .unwrap(),
        ),
    ]
}

#[test]
fn recurrence_matches_reference_on_randomized_soundings() {
    let room = Room::new(5.0, 6.0);
    let spec = spec(&room);
    let engine = LikelihoodEngine::recurrence();
    let tags = [P2::new(1.3, 1.8), P2::new(3.7, 4.4), P2::new(2.5, 0.6)];
    for (name, env) in environments(100) {
        for (t, &tag) in tags.iter().enumerate() {
            let corrected = corrected_for(&env, tag, 200 + t as u64, None);
            for combining in [
                AntennaCombining::Coherent,
                AntennaCombining::NoncoherentAntennas,
                AntennaCombining::Hybrid,
            ] {
                for i in 0..corrected.n_anchors() {
                    let fast = engine.anchor_likelihood(&corrected, i, spec, combining);
                    let reference = anchor_likelihood_reference(&corrected, i, spec, combining);
                    assert_grids_close(
                        &fast,
                        &reference,
                        1e-9,
                        &format!("{name} tag {tag} anchor {i} {combining:?}"),
                    );
                }
                let fast = engine.joint_likelihood(&corrected, spec, combining);
                let reference = joint_likelihood_reference(&corrected, spec, combining);
                assert_grids_close(
                    &fast,
                    &reference,
                    1e-9,
                    &format!("{name} tag {tag} joint {combining:?}"),
                );
            }
        }
    }
}

#[test]
fn recurrence_matches_reference_under_fault_degradation() {
    let room = Room::new(5.0, 6.0);
    let spec = spec(&room);
    let engine = LikelihoodEngine::recurrence();
    let chans = all_data_channels();
    let plans = [
        FaultPlan {
            seed: 7,
            tag_loss: 0.35,
            master_loss: 0.1,
            ..Default::default()
        },
        FaultPlan {
            seed: 8,
            dropouts: vec![AnchorDropout {
                anchor: 2,
                bands: 0..chans.len(),
            }],
            dead_antennas: vec![(1, 0), (3, 2)],
            ..Default::default()
        },
        FaultPlan {
            seed: 9,
            tag_loss: 0.6,
            dead_antennas: vec![(0, 3)],
            dropouts: vec![AnchorDropout {
                anchor: 1,
                bands: 5..20,
            }],
            ..Default::default()
        },
    ];
    for (p, plan) in plans.into_iter().enumerate() {
        let corrected = corrected_for(
            &Environment::free_space(),
            P2::new(2.4, 3.1),
            300 + p as u64,
            Some(plan),
        );
        let fast = engine.joint_likelihood(&corrected, spec, AntennaCombining::default());
        let reference = joint_likelihood_reference(&corrected, spec, AntennaCombining::default());
        assert_grids_close(&fast, &reference, 1e-9, &format!("fault plan {p}"));
        // Masking dropped whole bands: the surviving set is a sub-comb,
        // and the plan must still recognize it as uniform (exact path).
        let soa = SoaChannels::build(&corrected);
        assert!(
            soa.plan.is_uniform_comb() || corrected.bands.len() <= 1,
            "surviving bands of plan {p} should still form a comb"
        );
    }
}

#[test]
fn thread_count_never_changes_the_result() {
    let room = Room::new(5.0, 6.0);
    let spec = spec(&room);
    let corrected = corrected_for(
        &environments(42).pop().expect("environments").1,
        P2::new(3.1, 2.2),
        400,
        None,
    );
    let single = LikelihoodEngine::recurrence().joint_likelihood(
        &corrected,
        spec,
        AntennaCombining::default(),
    );
    let (ix1, iy1, _) = single.argmax().expect("peak");
    for threads in [2, 4, 8] {
        let multi = LikelihoodEngine::recurrence()
            .with_threads(threads)
            .joint_likelihood(&corrected, spec, AntennaCombining::default());
        // Bit-identical, not merely close: the row split assigns cells,
        // never reorders per-cell arithmetic.
        assert_eq!(
            single.data(),
            multi.data(),
            "threads={threads} changed cell values"
        );
        let (ix, iy, _) = multi.argmax().expect("peak");
        assert_eq!((ix, iy), (ix1, iy1), "threads={threads} moved the argmax");
    }
}

#[test]
fn reference_kernel_engine_reproduces_free_functions_exactly() {
    // The engine wrapping of the reference kernel changes no arithmetic:
    // bit-identical to the free reference functions.
    let room = Room::new(5.0, 6.0);
    let spec = spec(&room);
    let corrected = corrected_for(&Environment::free_space(), P2::new(1.9, 4.2), 500, None);
    let engine = LikelihoodEngine::reference();
    let via_engine = engine.joint_likelihood(&corrected, spec, AntennaCombining::default());
    let via_free = joint_likelihood_reference(&corrected, spec, AntennaCombining::default());
    assert_eq!(via_engine.data(), via_free.data());
}

#[test]
fn public_free_functions_route_through_the_fast_path() {
    // `likelihood::joint_likelihood` is now the engine: it must stay
    // within the equivalence budget of the reference.
    let room = Room::new(5.0, 6.0);
    let spec = spec(&room);
    let corrected = corrected_for(&Environment::free_space(), P2::new(2.2, 2.9), 600, None);
    let fast = joint_likelihood(&corrected, spec, AntennaCombining::default());
    let reference = joint_likelihood_reference(&corrected, spec, AntennaCombining::default());
    assert_grids_close(&fast, &reference, 1e-9, "public joint_likelihood");
}

#[test]
fn soa_layout_round_trips_the_alpha_tensor() {
    let corrected = corrected_for(&Environment::free_space(), P2::new(1.1, 1.2), 700, None);
    let soa = SoaChannels::build(&corrected);
    assert_eq!(soa.n_bands(), corrected.bands.len());
    // Plan frequencies ascend and enumerate the original bands.
    assert!(soa.plan.freqs.windows(2).all(|w| w[0] <= w[1]));
    for i in 0..corrected.n_anchors() {
        for (slot, &b) in soa.plan.order.iter().enumerate() {
            let slice = soa.band_antennas(i, slot);
            assert_eq!(slice.len(), corrected.anchors[i].n_antennas);
            for (j, &a) in slice.iter().enumerate() {
                assert_eq!(
                    a, corrected.bands[b].alpha[i][j],
                    "anchor {i} antenna {j} slot {slot}"
                );
            }
        }
    }
}

#[test]
fn off_comb_bands_fall_back_and_still_match_reference() {
    let room = Room::new(5.0, 6.0);
    let spec = spec(&room);
    let mut corrected = corrected_for(&Environment::free_space(), P2::new(2.8, 1.7), 800, None);
    // Push one band half a channel off the comb: the exact recurrence no
    // longer exists and BandPlan must refuse it…
    corrected.bands[10].freq_hz += 1.0e6;
    let soa = SoaChannels::build(&corrected);
    assert!(
        !soa.plan.is_uniform_comb(),
        "off-comb band must disable the recurrence"
    );
    // …while the engine's per-band fallback still matches the reference.
    let fast = LikelihoodEngine::recurrence().joint_likelihood(
        &corrected,
        spec,
        AntennaCombining::default(),
    );
    let reference = joint_likelihood_reference(&corrected, spec, AntennaCombining::default());
    assert_grids_close(&fast, &reference, 1e-9, "off-comb fallback");
}

#[test]
fn localizer_clones_share_one_steering_cache() {
    let room = Room::new(5.0, 6.0);
    let corrected = corrected_for(&Environment::free_space(), P2::new(2.0, 2.0), 900, None);
    let engine = LikelihoodEngine::recurrence();
    let clone = engine.clone();
    let spec = spec(&room);
    let _ = engine.joint_likelihood(&corrected, spec, AntennaCombining::default());
    let _ = clone.joint_likelihood(&corrected, spec, AntennaCombining::default());
    assert_eq!(
        engine.cache().len(),
        1,
        "clone must reuse the cached geometry"
    );
    let plan = SoaChannels::build(&corrected).plan;
    let a = engine.cache().tables(
        spec,
        &corrected.anchors,
        &corrected.master_anchor_dist,
        plan.base_hz,
        plan.step_hz,
    );
    let b = clone.cache().tables(
        spec,
        &corrected.anchors,
        &corrected.master_anchor_dist,
        plan.base_hz,
        plan.step_hz,
    );
    assert!(Arc::ptr_eq(&a, &b));
}

#[test]
fn band_plan_handles_the_full_ble_data_comb() {
    // The 37 data channels after correction: one uniform 2 MHz comb with
    // the advertising gaps folded in.
    let corrected = corrected_for(&Environment::free_space(), P2::new(1.0, 5.0), 1000, None);
    let freqs: Vec<f64> = corrected.bands.iter().map(|b| b.freq_hz).collect();
    let plan = BandPlan::build(&freqs);
    assert!(plan.is_uniform_comb());
    assert_eq!(plan.gaps.len(), freqs.len());
    assert_eq!(plan.step_hz, 2.0e6);
}

#[test]
fn simd_dispatch_paths_are_bit_identical_on_degraded_inputs() {
    // ISSUE 8: every compiled kernel backend (scalar always, AVX2 when
    // the host has it) must produce byte-for-byte identical sweeps, not
    // merely close ones — including on FaultPlan-degraded alpha tensors
    // whose dead antennas and dropped bands exercise the zero-weight
    // lanes. The backends share one generic body over IEEE
    // correctly-rounded ops, so this is exact, and `BLOC_NO_SIMD=1`
    // (which forces the scalar level at dispatch) can never change a
    // result.
    use bloc_num::sweep::{self, CellSweep, Combine};

    let levels = sweep::levels_to_test();
    let corrected = corrected_for(
        &Environment::free_space(),
        P2::new(2.4, 3.1),
        1100,
        Some(FaultPlan {
            seed: 13,
            tag_loss: 0.4,
            dead_antennas: vec![(0, 1), (2, 3)],
            dropouts: vec![AnchorDropout {
                anchor: 1,
                bands: 8..17,
            }],
            ..Default::default()
        }),
    );
    let soa = SoaChannels::build(&corrected);
    assert!(soa.plan.is_uniform_comb(), "degraded comb stays uniform");
    let n_cells = 64usize;
    const C: f64 = 299_792_458.0;
    for i in 0..corrected.n_anchors() {
        let nj = corrected.anchors[i].n_antennas;
        let nl = nj.div_ceil(4).max(1) * 4;
        let nb = soa.plan.freqs.len();
        // Synthetic but deterministic per-(cell, antenna) path deltas:
        // the kernel is the unit under test here, not the steering
        // geometry (the engine-level equivalence tests cover that).
        let mut seed_re = vec![1.0; n_cells * nl];
        let mut seed_im = vec![0.0; n_cells * nl];
        let mut step_re = vec![1.0; n_cells * nl];
        let mut step_im = vec![0.0; n_cells * nl];
        for cell in 0..n_cells {
            for j in 0..nj {
                let delta = 0.31 + 0.073 * cell as f64 + 0.0117 * j as f64;
                let ws = std::f64::consts::TAU * soa.plan.base_hz * delta / C;
                let wd = std::f64::consts::TAU * soa.plan.step_hz * delta / C;
                seed_re[cell * nl + j] = ws.cos();
                seed_im[cell * nl + j] = ws.sin();
                step_re[cell * nl + j] = wd.cos();
                step_im[cell * nl + j] = wd.sin();
            }
        }
        // Degraded alpha tensor in slot-major padded layout, straight
        // from the corrected sounding (dead lanes stay exactly zero).
        let mut alpha_re = vec![0.0; nb * nl];
        let mut alpha_im = vec![0.0; nb * nl];
        for (slot, &b) in soa.plan.order.iter().enumerate() {
            for (j, &a) in corrected.bands[b].alpha[i].iter().enumerate() {
                alpha_re[slot * nl + j] = a.re;
                alpha_im[slot * nl + j] = a.im;
            }
        }
        let s = CellSweep {
            seed_re: &seed_re,
            seed_im: &seed_im,
            step_re: &step_re,
            step_im: &step_im,
            alpha_re: &alpha_re,
            alpha_im: &alpha_im,
            n_lanes: nl,
            gaps: &soa.plan.gaps,
        };
        for combine in [Combine::Coherent, Combine::Noncoherent, Combine::Hybrid] {
            let mut baseline = vec![0.0; n_cells];
            sweep::write_comb_cells_at(levels[0], &s, combine, 0, &mut baseline);
            assert!(baseline.iter().all(|v| v.is_finite() && *v >= 0.0));
            for &level in &levels[1..] {
                let mut out = vec![0.0; n_cells];
                sweep::write_comb_cells_at(level, &s, combine, 0, &mut out);
                let a: Vec<u64> = baseline.iter().map(|v| v.to_bits()).collect();
                let b: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    a, b,
                    "anchor {i} {combine:?}: {level:?} diverged from {:?}",
                    levels[0]
                );
            }
        }
    }
}

#[test]
fn freq_comb_and_band_plan_share_one_comb_implementation() {
    // ISSUE 8 unification: the likelihood engine's `BandPlan` and the
    // synthesizer's `FreqComb` are the *same* `bloc_num::sweep::CombPlan`
    // — identical ordering, base, step and slot assignment from one
    // shared comb detector, no drift possible between the two engines.
    let channels = all_data_channels();
    let freqs: Vec<f64> = channels.iter().map(|c| c.freq_hz()).collect();
    let via_synth = bloc_chan::FreqComb::for_channels(&channels);
    let via_engine = BandPlan::build(&freqs);
    assert_eq!(via_synth.plan(), &via_engine);
    assert!(via_engine.is_uniform_comb());
    // Scrambled input order plans the same comb (order is per-input).
    let mut shuffled = freqs.clone();
    shuffled.reverse();
    shuffled.swap(3, 17);
    let replanned = BandPlan::build(&shuffled);
    assert_eq!(replanned.freqs, via_engine.freqs);
    assert_eq!(replanned.step_hz, via_engine.step_hz);
    assert_eq!(replanned.gaps, via_engine.gaps);
}
