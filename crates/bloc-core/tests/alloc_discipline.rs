//! Pins the warm-path allocation budget of the likelihood engine
//! (ISSUE 8): after the steering cache and the engine's SoA arena are
//! warm, a joint-likelihood call may allocate only its outputs and a
//! fixed handful of small plan/bookkeeping vectors — no per-cell, per
//! band × antenna, or per-row scratch. A counting global allocator makes
//! any regression (e.g. a reintroduced per-row `vec![]`) a hard test
//! failure, not a silent throughput loss.
//!
//! This file holds exactly one `#[test]` so the process-global counter
//! never sees a concurrent test's traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bloc_chan::geometry::Room;
use bloc_chan::sounder::{all_data_channels, Sounder, SounderConfig};
use bloc_chan::{AnchorArray, Environment};
use bloc_core::correction::correct;
use bloc_core::engine::LikelihoodEngine;
use bloc_core::likelihood::AntennaCombining;
use bloc_num::{GridSpec, P2};
use rand::{rngs::StdRng, SeedableRng};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn warm_joint_likelihood_allocates_only_outputs() {
    let room = Room::new(5.0, 6.0);
    let anchors: Vec<AnchorArray> = room
        .wall_midpoints()
        .iter()
        .zip(room.walls().iter())
        .enumerate()
        .map(|(i, (&m, w))| AnchorArray::centered(i, m, w.direction(), 4))
        .collect();
    let env = Environment::free_space();
    let sounder = Sounder::new(&env, &anchors, SounderConfig::default());
    let mut rng = StdRng::seed_from_u64(42);
    let corrected = correct(
        &sounder.sound(P2::new(2.1, 3.3), &all_data_channels(), &mut rng),
        true,
    )
    .expect("sounding must correct");
    let spec = GridSpec::covering(P2::new(-0.5, -0.5), P2::new(5.5, 6.5), 0.25);
    let engine = LikelihoodEngine::recurrence();

    // Two cold calls: populate the steering cache and the SoA arena.
    let cold = allocations_during(|| {
        let _ = engine.joint_likelihood(&corrected, spec, AntennaCombining::default());
    });
    let _ = engine.joint_likelihood(&corrected, spec, AntennaCombining::default());

    let warm = allocations_during(|| {
        let _ = engine.joint_likelihood(&corrected, spec, AntennaCombining::default());
    });

    // Warm budget: 1 joint grid + 1 map grid per anchor (4 anchors), the
    // freshly built comb plan's small vectors, the steering-cache key,
    // weighting bookkeeping and telemetry region names. Measured 53 at
    // the time of writing — every one O(1) or O(anchors). The budget of
    // 64 leaves slack for bookkeeping drift while still catching any
    // per-cell (672 cells here) or per-band × antenna (148) scratch.
    assert!(
        warm <= 64,
        "warm joint_likelihood made {warm} allocations (budget 64)"
    );
    assert!(
        warm < cold,
        "warm call ({warm}) should allocate less than cold ({cold})"
    );

    // The warm count is stable call over call — the arena really is
    // reused, not rebuilt.
    let warm2 = allocations_during(|| {
        let _ = engine.joint_likelihood(&corrected, spec, AntennaCombining::default());
    });
    assert_eq!(warm, warm2, "warm allocation count must be steady-state");
}
