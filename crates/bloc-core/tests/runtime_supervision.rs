//! Integration suite for the supervised sounding runtime: breaker
//! lifecycle, quorum admission, deterministic backoff, hop resync, cache
//! hygiene across quarantine, and track-level innovation gating.

use bloc_ble::access_address::AccessAddress;
use bloc_ble::channels::{Channel, ChannelMap};
use bloc_ble::hopping::{HopIncrement, HopSequence};
use bloc_chan::geometry::Room;
use bloc_chan::sounder::{all_data_channels, Sounder, SounderConfig, SoundingData};
use bloc_chan::{AnchorArray, AnchorDropout, Environment, FaultPlan, InterferenceBurst};
use bloc_core::runtime::{HopMonitor, RetryPolicy, RoundOutcome, RuntimeConfig, SessionSupervisor};
use bloc_core::tracker::FixDisposition;
use bloc_core::{BlocConfig, BlocLocalizer, BreakerState, DeferReason};
use bloc_num::par::Deadline;
use bloc_num::P2;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The standard 4-anchor test deployment (wall midpoints, 4 antennas).
fn deployment() -> (Room, Vec<AnchorArray>) {
    let room = Room::new(5.0, 6.0);
    let anchors: Vec<AnchorArray> = room
        .wall_midpoints()
        .iter()
        .zip(room.walls().iter())
        .enumerate()
        .map(|(i, (&m, w))| AnchorArray::centered(i, m, w.direction(), 4))
        .collect();
    (room, anchors)
}

fn quiet() -> SounderConfig {
    SounderConfig {
        antenna_phase_err_std: 0.0,
        ..Default::default()
    }
}

/// One deterministic sounding: the same (seed, round, attempt) triple
/// always reproduces the same noise and fault draw.
fn sound(
    sounder: &Sounder,
    plan: &FaultPlan,
    channels: &[Channel],
    truth: P2,
    seed: u64,
    round: u64,
    attempt: usize,
) -> SoundingData {
    let s = seed
        ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (attempt as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    let mut rng = StdRng::seed_from_u64(s);
    sounder
        .clone()
        .with_faults(plan.with_seed(s))
        .sound(truth, channels, &mut rng)
}

#[test]
fn retry_policy_is_deterministic_and_bounded() {
    let policy = RetryPolicy {
        max_retries: 5,
        base_delay_us: 400,
        max_delay_us: 3_000,
        jitter: 0.5,
        seed: 77,
    };
    assert_eq!(policy.attempts(), 6);
    for round in 0..32u64 {
        let a = policy.schedule(round);
        let b = policy.schedule(round);
        assert_eq!(a, b, "schedule must be a pure function of (policy, round)");
        assert_eq!(a[0], 0, "the scheduled sounding itself is not delayed");
        for (attempt, &d) in a.iter().enumerate().skip(1) {
            let exp = (400u64 << (attempt - 1)).min(3_000);
            let floor = (exp as f64 * 0.5).floor() as u64;
            assert!(
                d >= floor && d <= exp,
                "round {round} attempt {attempt}: {d} outside [{floor}, {exp}]"
            );
        }
    }
    // Jitter decorrelates rounds: not every round draws the same factors.
    let first: Vec<u64> = policy.schedule(0);
    assert!(
        (1..32).any(|r| policy.schedule(r) != first),
        "jitter must vary across rounds"
    );
}

#[test]
fn healthy_rounds_fix_and_reuse_steering_tables() {
    let (room, anchors) = deployment();
    let env = Environment::free_space();
    let sounder = Sounder::new(&env, &anchors, quiet());
    let channels = all_data_channels()[..12].to_vec();
    let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));
    let mut sup = SessionSupervisor::new(localizer, anchors.len(), RuntimeConfig::default());

    let hits_name = "cache.steering.hits";
    let before = bloc_obs::counter(hits_name).get();
    let truth = P2::new(2.0, 2.5);
    for round in 0..8 {
        let out = sup.run_round(0.5, |attempt| {
            sound(
                &sounder,
                &FaultPlan::default(),
                &channels,
                truth,
                41,
                round,
                attempt,
            )
        });
        match out {
            RoundOutcome::Fix(fix) => {
                assert_eq!(fix.attempts, 1, "clean rounds need no retries");
                assert_eq!(fix.admitted, vec![0, 1, 2, 3]);
                assert!(fix.estimate.position.dist(truth) < 0.6);
            }
            RoundOutcome::Deferred(r) => panic!("clean round {round} deferred: {r}"),
            RoundOutcome::Degraded(d) => {
                panic!(
                    "clean round {round} degraded without a fallback stack: {}",
                    d.reason
                )
            }
        }
    }
    // Unchanged admission ⇒ unchanged geometry ⇒ one steering table,
    // served from the cache for every round after the first.
    assert_eq!(sup.pipeline().localizer().engine().cache().len(), 1);
    assert!(
        bloc_obs::counter(hits_name).get() - before >= 7,
        "rounds 2..8 must hit the steering cache"
    );
    assert!(sup.breaker_ledger().is_empty(), "no breaker should move");
    for i in 0..anchors.len() {
        assert!(sup.anchor_health(i) > 0.95, "anchor {i} health");
        assert_eq!(sup.breaker_state(i), BreakerState::Closed);
    }
}

#[test]
fn chronically_bad_anchor_is_quarantined_probed_and_readmitted() {
    let (room, anchors) = deployment();
    let env = Environment::free_space();
    let sounder = Sounder::new(&env, &anchors, quiet());
    let channels = all_data_channels()[..12].to_vec();
    let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));
    let config = RuntimeConfig::default();
    let mut sup = SessionSupervisor::new(localizer, anchors.len(), config.clone());

    // Anchor 2 is dead on every band for the first 6 rounds, then heals.
    let dead = FaultPlan {
        dropouts: vec![AnchorDropout {
            anchor: 2,
            bands: 0..channels.len(),
        }],
        ..Default::default()
    };
    let clean = FaultPlan::default();
    let evicted = bloc_obs::counter("cache.steering.evicted").get();
    let breaker_events = bloc_obs::counter("cache.steering.invalidations.breaker").get();

    let truth = P2::new(1.5, 3.0);
    let mut open_round = None;
    for round in 0..20u64 {
        let plan = if round < 6 { &dead } else { &clean };
        let out = sup.run_round(0.5, |attempt| {
            sound(&sounder, plan, &channels, truth, 43, round, attempt)
        });
        assert!(
            out.is_fix(),
            "three healthy anchors keep fixing (round {round})"
        );
        if open_round.is_none() && sup.breaker_state(2) == BreakerState::Open {
            open_round = Some(round);
            assert!(
                !sup.admitted().contains(&2),
                "an open breaker excludes its anchor"
            );
            assert!(sup.anchor_health(2) < config.open_threshold);
        }
    }

    let open_round = open_round.expect("a fully dead anchor must be quarantined");
    assert!(
        (2..=5).contains(&open_round),
        "EWMA + streak should open within the fault window, got {open_round}"
    );

    // Ledger tells the whole story: open → half-open probe after the
    // cooldown → closed after sustained good probes. The master and the
    // healthy anchors never move.
    let ledger = sup.breaker_ledger();
    assert_eq!(ledger.len(), 3, "ledger: {ledger:?}");
    assert!(ledger.iter().all(|t| t.anchor == 2));
    assert_eq!(
        (ledger[0].from, ledger[0].to),
        (BreakerState::Closed, BreakerState::Open)
    );
    assert_eq!(
        (ledger[1].from, ledger[1].to),
        (BreakerState::Open, BreakerState::HalfOpen)
    );
    assert_eq!(
        ledger[1].round - ledger[0].round,
        config.cooldown_rounds,
        "cooldown must be exact"
    );
    assert_eq!(
        (ledger[2].from, ledger[2].to),
        (BreakerState::HalfOpen, BreakerState::Closed)
    );
    assert_eq!(sup.breaker_state(2), BreakerState::Closed);
    assert!(sup.anchor_health(2) > config.close_threshold);
    assert_eq!(sup.admitted(), vec![0, 1, 2, 3]);

    // Quarantine and probe each retired a geometry from the steering
    // cache (4-anchor table on open, 3-anchor table on probe), and both
    // events are attributed to the breaker cause.
    assert!(
        bloc_obs::counter("cache.steering.evicted").get() - evicted >= 2,
        "membership changes must invalidate steering tables"
    );
    assert!(
        bloc_obs::counter("cache.steering.invalidations.breaker").get() - breaker_events >= 2,
        "supervisor invalidations must carry the breaker cause"
    );
}

#[test]
fn master_is_never_quarantined() {
    let (room, anchors) = deployment();
    let env = Environment::free_space();
    let sounder = Sounder::new(&env, &anchors, quiet());
    let channels = all_data_channels()[..12].to_vec();
    let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));
    let mut sup = SessionSupervisor::new(localizer, anchors.len(), RuntimeConfig::default());

    // The master dark on every band: rounds cannot fix (Eq. 10 needs
    // ĥ00), but anchor 0 must stay Closed — it is structurally required.
    let plan = FaultPlan {
        dropouts: vec![AnchorDropout {
            anchor: 0,
            bands: 0..channels.len(),
        }],
        ..Default::default()
    };
    for round in 0..6u64 {
        let out = sup.run_round(0.5, |attempt| {
            sound(
                &sounder,
                &plan,
                &channels,
                P2::new(2.0, 2.0),
                47,
                round,
                attempt,
            )
        });
        match out {
            RoundOutcome::Deferred(DeferReason::BandQuorum { surviving, .. }) => {
                assert_eq!(surviving, 0, "no band survives without the master");
            }
            other => panic!("round {round}: expected a band-quorum deferral, got {other:?}"),
        }
    }
    assert_eq!(sup.breaker_state(0), BreakerState::Closed);
    assert!(
        sup.breaker_ledger().iter().all(|t| t.anchor != 0),
        "the master never enters the ledger"
    );
    assert!(
        sup.anchor_health(0) < 0.5,
        "health still reflects reality: {}",
        sup.anchor_health(0)
    );
}

#[test]
fn quorum_policies_defer_with_typed_reasons() {
    let (room, anchors) = deployment();
    let env = Environment::free_space();
    let sounder = Sounder::new(&env, &anchors, quiet());
    let channels = all_data_channels()[..12].to_vec();

    // Anchor quorum: demand more live anchors than the deployment has.
    let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));
    let mut sup = SessionSupervisor::new(
        localizer,
        anchors.len(),
        RuntimeConfig {
            min_live_anchors: anchors.len() + 1,
            ..Default::default()
        },
    );
    let mut calls = 0;
    let out = sup.run_round(0.5, |_| {
        calls += 1;
        sound(
            &sounder,
            &FaultPlan::default(),
            &channels,
            P2::new(2.0, 2.0),
            53,
            0,
            0,
        )
    });
    match out {
        RoundOutcome::Deferred(DeferReason::AnchorQuorum { live, required }) => {
            assert_eq!((live, required), (anchors.len(), anchors.len() + 1));
        }
        other => panic!("expected anchor-quorum deferral, got {other:?}"),
    }
    assert_eq!(
        calls, 0,
        "below anchor quorum no sounding is even attempted"
    );

    // Band quorum: demand more surviving bands than channels sounded.
    let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));
    let mut sup = SessionSupervisor::new(
        localizer,
        anchors.len(),
        RuntimeConfig {
            min_surviving_bands: channels.len() + 1,
            retry: RetryPolicy::with_retries(1),
            ..Default::default()
        },
    );
    let mut calls = 0;
    let out = sup.run_round(0.5, |attempt| {
        calls += 1;
        sound(
            &sounder,
            &FaultPlan::default(),
            &channels,
            P2::new(2.0, 2.0),
            59,
            0,
            attempt,
        )
    });
    match out {
        RoundOutcome::Deferred(DeferReason::BandQuorum {
            surviving,
            required,
        }) => {
            assert_eq!(surviving, channels.len());
            assert_eq!(required, channels.len() + 1);
        }
        other => panic!("expected band-quorum deferral, got {other:?}"),
    }
    assert_eq!(calls, 2, "band quorum is re-checked on every attempt");
}

#[test]
fn interference_burst_does_not_displace_the_track() {
    // Fig.-11-style mid-track burst: strong interference over half the
    // spectrum for three rounds. Whatever the corrupted likelihood
    // produces, the velocity-scaled Mahalanobis gate keeps the published
    // track from jumping.
    let (room, anchors) = deployment();
    let env = Environment::free_space();
    let sounder = Sounder::new(&env, &anchors, quiet());
    let channels = all_data_channels();
    let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));
    let mut sup = SessionSupervisor::new(localizer, anchors.len(), RuntimeConfig::default());

    let burst = FaultPlan {
        tag_loss: 0.3,
        interference: vec![InterferenceBurst {
            freq_lo: 0,
            freq_hi: 18,
            noise_rel: 30.0,
        }],
        ..Default::default()
    };
    let clean = FaultPlan::default();
    let v = P2::new(0.25, 0.1);
    let dt = 0.5;
    let mut last_track: Option<P2> = None;
    for round in 0..16u64 {
        let truth = P2::new(1.2, 1.5) + v * (round as f64 * dt);
        let plan = if (6..9).contains(&round) {
            &burst
        } else {
            &clean
        };
        let out = sup.run_round(dt, |attempt| {
            sound(&sounder, plan, &channels, truth, 61, round, attempt)
        });
        let track = match &out {
            RoundOutcome::Fix(fix) => fix.track.position,
            RoundOutcome::Degraded(_) | RoundOutcome::Deferred(_) => match sup.pipeline().state() {
                Some(s) => s.position,
                None => continue,
            },
        };
        if let Some(prev) = last_track {
            let step = track.dist(prev);
            assert!(
                step < 1.2,
                "round {round}: track jumped {step:.2} m through the burst"
            );
        }
        assert!(
            track.dist(truth) < 1.5,
            "round {round}: track strayed {:.2} m from truth",
            track.dist(truth)
        );
        last_track = Some(track);
    }
}

#[test]
fn teleported_truth_reacquires_within_k_rounds() {
    let (room, anchors) = deployment();
    let env = Environment::free_space();
    let sounder = Sounder::new(&env, &anchors, quiet());
    let channels = all_data_channels()[..16].to_vec();
    let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));
    // Free-space fixes land within ~0.1 m, so tell the gate so: with the
    // default σ_fix = 0.9 m a 4σ gate is wider than the room itself. The
    // 3σ bound also keeps coasting's covariance growth from soft-accepting
    // the far fix before the hysteresis counter fires.
    let config = RuntimeConfig {
        tracker: bloc_core::tracker::TrackerConfig {
            fix_sigma_m: 0.3,
            gate_sigma: 3.0,
            ..Default::default()
        },
        ..Default::default()
    };
    let k = config.tracker.reacquire_after;
    let mut sup = SessionSupervisor::new(localizer, anchors.len(), config);

    let home = P2::new(1.2, 1.5);
    let away = P2::new(4.0, 4.8); // ~4.3 m jump — far beyond the gate
    let mut reacquired_at = None;
    let jump_round = 8u64;
    for round in 0..16u64 {
        let truth = if round < jump_round { home } else { away };
        let out = sup.run_round(0.5, |attempt| {
            sound(
                &sounder,
                &FaultPlan::default(),
                &channels,
                truth,
                67,
                round,
                attempt,
            )
        });
        if let RoundOutcome::Fix(fix) = &out {
            match fix.disposition {
                FixDisposition::Rejected { .. } => assert!(
                    round >= jump_round,
                    "no rejection expected before the jump (round {round})"
                ),
                FixDisposition::Reacquired(_) if reacquired_at.is_none() => {
                    reacquired_at = Some(round);
                }
                _ => {}
            }
        }
    }
    let reacquired_at = reacquired_at.expect("the track must re-acquire after a true move");
    assert!(
        reacquired_at < jump_round + k as u64,
        "re-acquired at round {reacquired_at}, hysteresis bound is {k} rounds after {jump_round}"
    );
    let final_pos = sup.pipeline().state().expect("track is live").position;
    assert!(
        final_pos.dist(away) < 0.8,
        "track must settle at the new truth, {:.2} m away",
        final_pos.dist(away)
    );
}

#[test]
fn supervision_is_identical_across_thread_counts() {
    let (room, anchors) = deployment();
    let env = Environment::free_space();
    let sounder = Sounder::new(&env, &anchors, quiet());
    let channels = all_data_channels()[..12].to_vec();
    let dead = FaultPlan {
        tag_loss: 0.2,
        dropouts: vec![AnchorDropout {
            anchor: 2,
            bands: 0..channels.len(),
        }],
        ..Default::default()
    };

    let run = |threads: usize| {
        let localizer = BlocLocalizer::new(BlocConfig::for_room(&room))
            .with_engine(bloc_core::engine::LikelihoodEngine::default().with_threads(threads));
        let mut sup = SessionSupervisor::new(localizer, anchors.len(), RuntimeConfig::default());
        let mut tracks = Vec::new();
        for round in 0..10u64 {
            let plan = if round < 5 {
                &dead
            } else {
                &FaultPlan::default()
            };
            let out = sup.run_round(0.5, |attempt| {
                sound(
                    &sounder,
                    plan,
                    &channels,
                    P2::new(2.2, 2.8),
                    71,
                    round,
                    attempt,
                )
            });
            if let RoundOutcome::Fix(fix) = out {
                tracks.push((round, fix.estimate.position, fix.track.position));
            }
        }
        (tracks, sup.breaker_ledger().to_vec())
    };
    let (tracks_1, ledger_1) = run(1);
    let (tracks_8, ledger_8) = run(8);
    assert_eq!(
        tracks_1, tracks_8,
        "estimates and track states must be bit-identical across thread counts"
    );
    assert_eq!(ledger_1, ledger_8, "breaker decisions too");
}

#[test]
fn hop_monitor_repairs_desync_in_closed_form() {
    let aa = AccessAddress::new_data(0x8E89_BED7 ^ 0x00C0_FFEE).expect("valid AA");
    let hop = HopIncrement::new(9).expect("valid hop");
    let seq = HopSequence::for_connection(hop, ChannelMap::all(), aa);
    let reference = seq.clone();
    let mut monitor = HopMonitor::new(seq);

    // Five planned events, observed in sync.
    let plan = monitor.plan(5);
    assert_eq!(plan.len(), 5);
    let e = monitor.sequence().event_counter;
    assert!(monitor.observe(reference.channel_at(e), e));
    assert_eq!(monitor.desyncs(), 0);

    // The tag skipped ahead four events (missed packets): one observed
    // (channel, counter) pair repairs the replica without replay.
    let ahead = e + 4;
    assert!(!monitor.observe(reference.channel_at(ahead), ahead));
    assert_eq!(monitor.desyncs(), 1);
    assert_eq!(monitor.sequence().event_counter, ahead);
    assert!(monitor.observe(reference.channel_at(ahead), ahead));

    // After repair the replica's future matches an always-synced replay.
    let mut replay = reference.clone();
    replay.resync(ahead);
    assert_eq!(
        monitor.plan(6),
        (0..6).map(|_| replay.next_channel()).collect::<Vec<_>>()
    );
    assert_eq!(monitor.desyncs(), 1);
}

#[test]
fn breaker_transitions_invalidate_the_sounder_path_cache() {
    // The PR 4 hook pattern, extended to the synthesis engine: the
    // supervisor holds a clone of the sounder's path cache (clones share
    // storage) and drops it whenever breaker-driven admission changes —
    // the deployment the static anchor↔master PathSets were memoized for
    // is no longer the one being sounded.
    let (room, anchors) = deployment();
    let env = Environment::free_space();
    let cache = bloc_chan::PathCache::new();
    let sounder = Sounder::new(&env, &anchors, quiet()).with_path_cache(cache.clone());
    let channels = all_data_channels()[..12].to_vec();
    let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));
    let mut sup = SessionSupervisor::new(localizer, anchors.len(), RuntimeConfig::default())
        .with_path_cache(cache.clone());

    let dead = FaultPlan {
        dropouts: vec![AnchorDropout {
            anchor: 2,
            bands: 0..channels.len(),
        }],
        ..Default::default()
    };
    let clean = FaultPlan::default();
    let invalidations = bloc_obs::counter("cache.path.invalidations.breaker").get();
    let hits = bloc_obs::counter("cache.path.hits").get();

    let truth = P2::new(1.5, 3.0);
    for round in 0..20u64 {
        let plan = if round < 6 { &dead } else { &clean };
        let out = sup.run_round(0.5, |attempt| {
            sound(&sounder, plan, &channels, truth, 47, round, attempt)
        });
        assert!(out.is_fix(), "three healthy anchors keep fixing");
    }

    // The full quarantine story played out (open → probe → readmit)…
    assert_eq!(sup.breaker_ledger().len(), 3);
    // …and each membership change (open, probe) dropped the path cache,
    // attributed to the breaker cause.
    assert!(
        bloc_obs::counter("cache.path.invalidations.breaker").get() - invalidations >= 2,
        "membership changes must invalidate the path cache"
    );
    // Between invalidations the cache served warm PathSets: 20 rounds of
    // an identical deployment are far more hits than misses.
    assert!(
        bloc_obs::counter("cache.path.hits").get() - hits > 0,
        "steady rounds must reuse cached PathSets"
    );
    assert!(
        !cache.is_empty(),
        "the cache ends warm after the last stable stretch"
    );
}

#[test]
fn deadline_exhaustion_defers_with_typed_reason() {
    let (room, anchors) = deployment();
    let env = Environment::free_space();
    let sounder = Sounder::new(&env, &anchors, quiet());
    let channels = all_data_channels()[..12].to_vec();
    let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));
    // Jitter 0 keeps the backoff charges exact, so the deferral's spent
    // figure can be pinned bit-for-bit.
    let config = RuntimeConfig {
        retry: RetryPolicy {
            max_retries: 2,
            base_delay_us: 500,
            max_delay_us: 4_000,
            jitter: 0.0,
            seed: 9,
        },
        ..Default::default()
    };
    let mut sup = SessionSupervisor::new(localizer, anchors.len(), config);
    let truth = P2::new(2.0, 2.5);

    // A budget exhausted on entry (the caller charged queueing delay
    // before the round) skips the round's work entirely: sound() is
    // never invoked.
    let timed_out = bloc_obs::counter("runtime.rounds.timed_out").get();
    let mut spent_on_queue = Deadline::budget(100);
    spent_on_queue.charge(250);
    let mut soundings = 0u32;
    let out = sup.run_round_with_deadline(0.5, Some(&mut spent_on_queue), |attempt| {
        soundings += 1;
        sound(
            &sounder,
            &FaultPlan::default(),
            &channels,
            truth,
            53,
            0,
            attempt,
        )
    });
    match out {
        RoundOutcome::Deferred(DeferReason::DeadlineExceeded {
            budget_us,
            spent_us,
        }) => {
            assert_eq!(budget_us, 100);
            assert_eq!(spent_us, 250);
        }
        other => panic!("expected a deadline deferral, got {other:?}"),
    }
    assert_eq!(soundings, 0, "an exhausted budget must not sound");

    // Mid-round: attempt 0 loses every tag packet (band quorum fails),
    // and the first retry's 500 µs backoff overruns a 400 µs budget —
    // the round defers with the deterministic virtual charge instead of
    // burning the rest of its retry schedule.
    let lost = FaultPlan {
        tag_loss: 1.0,
        ..Default::default()
    };
    let mut deadline = Deadline::budget(400);
    let out = sup.run_round_with_deadline(0.5, Some(&mut deadline), |attempt| {
        sound(&sounder, &lost, &channels, truth, 53, 1, attempt)
    });
    match out {
        RoundOutcome::Deferred(DeferReason::DeadlineExceeded {
            budget_us,
            spent_us,
        }) => {
            assert_eq!(budget_us, 400);
            assert_eq!(spent_us, 500, "jitter-free backoff charge is exact");
        }
        other => panic!("expected a mid-round deadline deferral, got {other:?}"),
    }
    assert!(
        bloc_obs::counter("runtime.rounds.timed_out").get() - timed_out >= 2,
        "both deferrals must be counted"
    );

    // The session is not damaged: an unbudgeted clean round fixes.
    let out = sup.run_round(0.5, |attempt| {
        sound(
            &sounder,
            &FaultPlan::default(),
            &channels,
            truth,
            53,
            2,
            attempt,
        )
    });
    assert!(
        out.is_fix(),
        "deadline deferrals must not poison the session"
    );
}

#[test]
fn bounded_breaker_ledger_reconciles_after_eviction() {
    let (room, anchors) = deployment();
    let env = Environment::free_space();
    let sounder = Sounder::new(&env, &anchors, quiet());
    let channels = all_data_channels()[..12].to_vec();
    let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));
    // Twitchy breaker + tiny ledger: a flapping anchor overflows the
    // 4-deep ring well within 40 rounds.
    let config = RuntimeConfig {
        open_after: 1,
        cooldown_rounds: 2,
        close_after: 1,
        ledger_capacity: 4,
        ..Default::default()
    };
    let mut sup = SessionSupervisor::new(localizer, anchors.len(), config);

    let dead = FaultPlan {
        dropouts: vec![AnchorDropout {
            anchor: 2,
            bands: 0..channels.len(),
        }],
        ..Default::default()
    };
    let clean = FaultPlan::default();
    let before: u64 = ["closed", "open", "half_open"]
        .iter()
        .map(|s| bloc_obs::counter(&format!("runtime.breaker.{s}")).get())
        .sum();

    // Anchor 2 flaps: 5 dead rounds, 5 clean, repeated — each cycle
    // walks its breaker through open → (failed probes →) half-open →
    // closed again.
    let truth = P2::new(1.5, 3.0);
    for round in 0..40u64 {
        let plan = if (round / 5) % 2 == 0 { &dead } else { &clean };
        sup.run_round(0.5, |attempt| {
            sound(&sounder, plan, &channels, truth, 59, round, attempt)
        });
    }

    let ledger = sup.breaker_ledger();
    assert_eq!(ledger.capacity(), 4);
    assert_eq!(ledger.len(), 4, "ring must be full: {ledger:?}");
    assert!(
        ledger.evicted() > 0,
        "40 flapping rounds must overflow a 4-deep ring"
    );
    assert_eq!(
        ledger.total(),
        ledger.len() as u64 + ledger.evicted(),
        "total() is resident plus evicted by definition"
    );
    // Counters are process-global (other tests in this binary also move
    // breakers), so the exact single-session reconciliation lives in the
    // soak gates; here the counters must have recorded at least this
    // session's transitions.
    let after: u64 = ["closed", "open", "half_open"]
        .iter()
        .map(|s| bloc_obs::counter(&format!("runtime.breaker.{s}")).get())
        .sum();
    assert!(
        after - before >= ledger.total(),
        "every ledgered transition must also be counted ({} counted, {} ledgered)",
        after - before,
        ledger.total()
    );
    // The resident window holds the most recent transitions, in round
    // order, all on the flapping anchor.
    let rounds: Vec<u64> = ledger.iter().map(|t| t.round).collect();
    let mut sorted = rounds.clone();
    sorted.sort_unstable();
    assert_eq!(rounds, sorted, "resident window must stay in order");
    assert!(ledger.iter().all(|t| t.anchor == 2));
}
