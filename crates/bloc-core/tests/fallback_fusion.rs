//! Degraded-mode fusion contract tests.
//!
//! * A healthy round must be **exactly** the pure-CSI estimate — fusion
//!   weights snap to `csi = 1` at the healthy threshold, so attaching a
//!   fallback stack cannot perturb a cm-class fix.
//! * A round whose CSI pipeline fails outright must still estimate, with
//!   the mode provenance flagged and the CSI weight at zero.
//! * Fusion weights are a convex combination for every health value.
//! * KNN fallback edge cases (empty db, oversized k, fully-masked query,
//!   duplicate surveyed positions) are typed errors or sane estimates —
//!   never panics.

use bloc_chan::geometry::Room;
use bloc_chan::sounder::{all_data_channels, Sounder, SounderConfig, SoundingData};
use bloc_chan::{AnchorArray, AnchorDropout, Environment, FaultPlan, RangeLoss};
use bloc_core::fallback::{FallbackError, FallbackStack};
use bloc_core::localizer::{BlocConfig, BlocLocalizer};
use bloc_core::{
    DegradationReport, EstimateMode, FallbackConfig, FingerprintDb, FusionPolicy, FusionWeights,
    PacketCountModel, RoundOutcome, RuntimeConfig, SessionSupervisor,
};
use bloc_num::P2;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn anchors(room: &Room) -> Vec<AnchorArray> {
    room.wall_midpoints()
        .iter()
        .zip(room.walls().iter())
        .enumerate()
        .map(|(i, (&m, w))| AnchorArray::centered(i, m, w.direction(), 4))
        .collect()
}

fn clean_sounder<'a>(env: &'a Environment, anchors: &'a [AnchorArray]) -> Sounder<'a> {
    Sounder::new(
        env,
        anchors,
        SounderConfig {
            antenna_phase_err_std: 0.0,
            ..Default::default()
        },
    )
}

/// A small hand-surveyed fingerprint database over the room.
fn survey_db(sounder: &Sounder<'_>, seed: u64) -> FingerprintDb {
    let channels = all_data_channels();
    let mut db = FingerprintDb::new(channels.len(), 4);
    let mut rng = StdRng::seed_from_u64(seed);
    for yi in 0..5 {
        for xi in 0..4 {
            let pos = P2::new(0.7 + xi as f64 * 1.2, 0.7 + yi as f64 * 1.2);
            let data = sounder.sound(pos, &channels, &mut rng);
            db.insert(pos, &data).expect("survey shapes agree");
        }
    }
    db
}

fn range_loss() -> RangeLoss {
    RangeLoss {
        d0: 1.0,
        per_m: 0.12,
        max: 0.8,
    }
}

fn stack_for(sounder: &Sounder<'_>) -> FallbackStack {
    FallbackStack::new(FallbackConfig::default())
        .with_fingerprints(survey_db(sounder, 400))
        .with_counts(PacketCountModel::new(0.0, range_loss()))
}

#[test]
fn healthy_round_is_exactly_pure_csi() {
    let room = Room::new(5.0, 6.0);
    let env = Environment::free_space();
    let anchors = anchors(&room);
    let sounder = clean_sounder(&env, &anchors);
    let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));
    let stack = stack_for(&sounder);

    let mut rng = StdRng::seed_from_u64(401);
    let tag = P2::new(2.1, 3.4);
    let data = sounder.sound(tag, &all_data_channels(), &mut rng);

    let pure = localizer.localize(&data).expect("clean sounding fixes");
    let fused = localizer
        .localize_with_fallback(&data, &stack, 0.0)
        .expect("clean sounding fixes with a stack attached");

    assert_eq!(fused.mode, EstimateMode::Csi);
    assert_eq!(fused.weights.csi, 1.0, "healthy weights snap to pure CSI");
    assert!(fused.weights.is_convex());
    let drift = fused.estimate.position.dist(pure.position);
    assert!(
        drift < 0.01,
        "healthy fused fix must match pure CSI within 1 cm, drifted {drift} m"
    );
    assert_eq!(
        fused.estimate.position, pure.position,
        "snap-to-CSI means bit-identical, not merely close"
    );
}

#[test]
fn csi_failure_falls_back_with_provenance() {
    let room = Room::new(5.0, 6.0);
    let env = Environment::free_space();
    let anchors = anchors(&room);
    let chans = all_data_channels();
    // Kill the master for the whole sweep: Eq. 10 is undefined on every
    // band, so the CSI pipeline cannot fix at all — but slaves still
    // heard the tag, so both fallbacks have evidence.
    let plan = FaultPlan {
        seed: 77,
        dropouts: vec![AnchorDropout {
            anchor: 0,
            bands: 0..chans.len(),
        }],
        range_loss: Some(range_loss()),
        ..Default::default()
    };
    let clean = clean_sounder(&env, &anchors);
    let stack = stack_for(&clean);
    let faulted = clean_sounder(&env, &anchors).with_faults(plan);
    let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));

    let mut rng = StdRng::seed_from_u64(402);
    let tag = P2::new(1.6, 2.2);
    let data = faulted.sound(tag, &chans, &mut rng);
    assert!(localizer.localize(&data).is_err(), "CSI must fail here");

    let fused = localizer
        .localize_with_fallback(&data, &stack, 0.0)
        .expect("fallback rescues the round");
    assert_eq!(fused.mode, EstimateMode::FallbackFused);
    assert_eq!(fused.weights.csi, 0.0, "no CSI evidence was used");
    assert!(fused.weights.is_convex());
    assert!(fused.weights.fingerprint > 0.0 && fused.weights.counts > 0.0);
    let err = fused.estimate.position.dist(tag);
    assert!(
        err < 3.7,
        "fallback estimate must stay in the RSSI-class regime: {err} m"
    );
}

#[test]
fn fusion_weights_are_convex_for_every_health() {
    let policy = FusionPolicy::default();
    for bands_dropped in [0, 5, 15, 30, 37] {
        for n_excluded in 0..4usize {
            for open_frac in [0.0, 0.34, 0.67, 1.0] {
                let report = DegradationReport {
                    bands_total: 37,
                    bands_dropped,
                    anchors_total: 4,
                    anchors_excluded: (0..n_excluded).collect(),
                    ..Default::default()
                };
                let w = FusionWeights::from_degradation(&report, open_frac, &policy);
                assert!(
                    w.is_convex(),
                    "weights must stay convex: {w:?} (dropped {bands_dropped}, \
                     excluded {n_excluded}, open {open_frac})"
                );
                let health = report.survival_fraction() * (1.0 - open_frac);
                if health >= policy.healthy_threshold {
                    assert_eq!(w.csi, 1.0, "healthy rounds snap to pure CSI");
                } else {
                    assert!(w.csi < 1.0);
                }
                // Every availability restriction stays convex too.
                for mask in 1..8u8 {
                    let r = w.restrict(mask & 1 != 0, mask & 2 != 0, mask & 4 != 0);
                    assert!(r.is_convex(), "restricted weights not convex: {r:?}");
                }
            }
        }
    }
    // Nothing available: all-zero, flagged non-convex (callers must not fuse).
    let none = FusionWeights::pure_csi().restrict(false, false, false);
    assert_eq!(none.csi + none.fingerprint + none.counts, 0.0);
    assert!(!none.is_convex());
}

#[test]
fn knn_edge_cases_are_typed_not_panics() {
    let room = Room::new(5.0, 6.0);
    let env = Environment::free_space();
    let anchors = anchors(&room);
    let sounder = clean_sounder(&env, &anchors);
    let chans = all_data_channels();
    let mut rng = StdRng::seed_from_u64(403);
    let data = sounder.sound(P2::new(2.0, 2.0), &chans, &mut rng);

    // Empty database → typed error.
    let empty = FingerprintDb::new(chans.len(), 4);
    assert_eq!(
        empty.query(&data, 4, 1).unwrap_err(),
        FallbackError::EmptyDatabase
    );

    // Shape mismatch → typed error.
    let wrong_shape = {
        let mut db = FingerprintDb::new(chans.len() - 1, 4);
        let short = SoundingData {
            bands: data.bands[..chans.len() - 1].to_vec(),
            anchors: data.anchors.clone(),
        };
        db.insert(P2::new(1.0, 1.0), &short)
            .expect("matching shape");
        db
    };
    assert!(matches!(
        wrong_shape.query(&data, 4, 1).unwrap_err(),
        FallbackError::ShapeMismatch { .. }
    ));

    let mut db = survey_db(&sounder, 404);

    // k larger than the database clamps instead of erroring.
    let est = db.query(&data, 10_000, 1).expect("oversized k is sane");
    assert_eq!(est.neighbors.len(), db.len());
    assert!(est.position.x.is_finite() && est.position.y.is_finite());

    // k = 0 clamps to 1.
    let est = db.query(&data, 0, 1).expect("k=0 clamps to 1");
    assert_eq!(est.neighbors.len(), 1);

    // Fully-masked query (every measurement an exact-zero hole) → typed.
    let mut holed = data.clone();
    for band in &mut holed.bands {
        for row in &mut band.tag_to_anchor {
            for v in row.iter_mut() {
                *v = bloc_num::complex::ZERO;
            }
        }
    }
    assert_eq!(
        db.query(&holed, 4, 1).unwrap_err(),
        FallbackError::NoSurvivingFeatures
    );

    // Duplicate surveyed positions: zero feature distance must not
    // divide by zero — the estimate collapses onto the duplicate.
    let dup_pos = P2::new(3.0, 3.0);
    let mut rng = StdRng::seed_from_u64(405);
    let dup_data = sounder.sound(dup_pos, &chans, &mut rng);
    db.insert(dup_pos, &dup_data).expect("shape matches");
    db.insert(dup_pos, &dup_data).expect("shape matches");
    let est = db.query(&dup_data, 2, 1).expect("duplicates are sane");
    assert!(
        est.position.dist(dup_pos) < 1e-6,
        "duplicate neighbors collapse onto their position: {:?}",
        est.position
    );
    assert!(est.spread_m.is_finite());
}

#[test]
fn supervisor_returns_degraded_not_deferred_when_fallback_can_estimate() {
    let room = Room::new(5.0, 6.0);
    let env = Environment::free_space();
    let anchors = anchors(&room);
    let chans = all_data_channels();
    let clean = clean_sounder(&env, &anchors);
    let stack = stack_for(&clean);
    let localizer = BlocLocalizer::new(BlocConfig::for_room(&room));

    // Impossible anchor quorum: every round would defer before sounding.
    let config = RuntimeConfig {
        min_live_anchors: 5,
        ..Default::default()
    };
    let mut sup = SessionSupervisor::new(localizer, 4, config).with_fallback(stack);

    let tag = P2::new(2.4, 2.9);
    for round in 0..3u64 {
        let out = sup.run_round(0.5, |attempt| {
            let mut rng = StdRng::seed_from_u64(500 + round * 10 + attempt as u64);
            clean.sound(tag, &chans, &mut rng)
        });
        match out {
            RoundOutcome::Degraded(d) => {
                assert!(matches!(
                    d.mode,
                    EstimateMode::Fingerprint | EstimateMode::Counts | EstimateMode::FallbackFused
                ));
                assert_eq!(d.weights.csi, 0.0);
                assert!(d.weights.is_convex());
                assert!(d.sigma_m >= 0.35, "fallback sigma respects the floor");
                assert!(
                    d.estimate.position.dist(tag) < 3.7,
                    "round {round}: degraded error {} m",
                    d.estimate.position.dist(tag)
                );
            }
            other => panic!(
                "round {round}: expected Degraded, got {:?}",
                match other {
                    RoundOutcome::Fix(_) => "Fix",
                    RoundOutcome::Deferred(_) => "Deferred",
                    RoundOutcome::Degraded(_) => unreachable!(),
                }
            ),
        }
    }
    assert_eq!(sup.current_mode(), Some("fallback_fused"));
}
