//! The Gaussian frequency pulse of GFSK.
//!
//! BLE smooths its FSK bit stream with a Gaussian filter (BT = 0.5) "to
//! avoid frequent jumps in frequency (and out-of-band noise)" — which is
//! precisely what makes CSI measurement hard (paper §4, Fig. 4a): the
//! instantaneous frequency only *converges* to the tone when several equal
//! bits are sent back-to-back (Fig. 4b).
//!
//! The frequency pulse is the convolution of a one-symbol rectangle with a
//! Gaussian low-pass of 3 dB bandwidth `B = BT / T`:
//!
//! `g(t) = rect_T(t) * h_G(t)`, `h_G(t) = √(2π/ln2)·B·exp(−2π²B²t²/ln2)`
//!
//! sampled at `sps` samples per symbol over a span of ±`span` symbols and
//! normalized to unit area (so a long run of +1 bits drives the shaped
//! waveform to exactly +1).

/// A sampled Gaussian frequency pulse.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GaussianPulse {
    taps: Vec<f64>,
    sps: usize,
    span: usize,
}

impl GaussianPulse {
    /// Builds the pulse for bandwidth-time product `bt`, `sps` samples per
    /// symbol, spanning ±`span` symbols.
    ///
    /// # Panics
    /// Panics for `sps == 0`, `span == 0` or non-positive `bt`.
    pub fn new(bt: f64, sps: usize, span: usize) -> Self {
        assert!(sps > 0 && span > 0, "pulse needs sps > 0 and span > 0");
        assert!(bt > 0.0, "BT product must be positive");

        let ln2 = std::f64::consts::LN_2;
        let b = bt; // bandwidth in 1/T units; time below is in symbols
        let gauss = |t: f64| {
            (2.0 * std::f64::consts::PI / ln2).sqrt()
                * b
                * (-2.0 * std::f64::consts::PI.powi(2) * b * b * t * t / ln2).exp()
        };

        // g(t) = ∫_{t-1/2}^{t+1/2} h_G(u) du, evaluated by fine quadrature.
        let n = 2 * span * sps + 1;
        let mut taps = Vec::with_capacity(n);
        let quad_steps = 64;
        for i in 0..n {
            let t = (i as f64 - (n - 1) as f64 / 2.0) / sps as f64;
            let mut acc = 0.0;
            for q in 0..quad_steps {
                let u = t - 0.5 + (q as f64 + 0.5) / quad_steps as f64;
                acc += gauss(u);
            }
            taps.push(acc / quad_steps as f64);
        }
        // Normalize to unit area first, then fix up the symbol-spaced comb
        // sum so a constant bit stream settles at exactly ±1.
        let sum: f64 = taps.iter().sum();
        for tap in &mut taps {
            *tap /= sum;
        }
        let mut p = Self { taps, sps, span };
        p.renormalize_comb();
        p
    }

    /// Adjusts taps so that the sum over a symbol-spaced comb equals 1
    /// (exactness matters: it makes long runs settle at exactly ±1).
    fn renormalize_comb(&mut self) {
        // Sum taps at stride sps starting from the centre.
        let mut comb = 0.0;
        let centre = self.taps.len() / 2;
        let mut i = centre as isize;
        while i >= 0 {
            comb += self.taps[i as usize];
            i -= self.sps as isize;
        }
        let mut i = centre + self.sps;
        while i < self.taps.len() {
            comb += self.taps[i];
            i += self.sps;
        }
        if comb > 0.0 {
            for t in &mut self.taps {
                *t /= comb;
            }
        }
    }

    /// The filter taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Samples per symbol.
    pub fn sps(&self) -> usize {
        self.sps
    }

    /// Span in symbols on each side of the centre.
    pub fn span(&self) -> usize {
        self.span
    }

    /// Shapes a bit sequence into the normalized frequency waveform
    /// (−1 … +1), `sps` samples per input bit.
    ///
    /// Bits are treated as NRZ impulses (±1) at symbol centres, convolved
    /// with the pulse. The output has `bits.len() · sps` samples aligned so
    /// sample `k·sps + sps/2` sits at the centre of bit `k`; the filter's
    /// group delay is compensated internally. Edge bits are extended (the
    /// first/last bit value is held) so the waveform starts and ends
    /// settled, matching a radio that idles at the last tone.
    pub fn shape(&self, bits: &[bool]) -> Vec<f64> {
        if bits.is_empty() {
            return Vec::new();
        }
        let n_out = bits.len() * self.sps;
        let half = (self.taps.len() - 1) / 2; // group delay in samples
        let mut out = vec![0.0; n_out];

        // Symbol value at (possibly out-of-range) bit index, clamped.
        let bit_val = |idx: isize| -> f64 {
            let idx = idx.clamp(0, bits.len() as isize - 1) as usize;
            if bits[idx] {
                1.0
            } else {
                -1.0
            }
        };

        // out[n] = Σ_k bit(k) · taps[n + half − sps/2 − k·sps] — an impulse
        // train through the (rect⊗gauss) pulse, with bit k's pulse centre
        // landing at sample k·sps + sps/2 (the bit centre).
        for (n, sample) in out.iter_mut().enumerate() {
            let centre_sample = n as isize + half as isize - (self.sps / 2) as isize;
            let k_min =
                (centre_sample - self.taps.len() as isize + 1).div_euclid(self.sps as isize);
            let k_max = centre_sample.div_euclid(self.sps as isize);
            let mut acc = 0.0;
            for k in k_min..=k_max {
                let tap_idx = centre_sample - k * self.sps as isize;
                if tap_idx >= 0 && (tap_idx as usize) < self.taps.len() {
                    acc += bit_val(k) * self.taps[tap_idx as usize];
                }
            }
            *sample = acc;
        }
        out
    }
}

/// The BLE-standard pulse: BT = 0.5 at the given oversampling, ±2-symbol
/// span.
pub fn ble_pulse(sps: usize) -> GaussianPulse {
    GaussianPulse::new(bloc_num::constants::BLE_GAUSSIAN_BT, sps, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn taps_are_symmetric_and_positive() {
        let p = ble_pulse(8);
        let taps = p.taps();
        for (a, b) in taps.iter().zip(taps.iter().rev()) {
            assert!((a - b).abs() < 1e-12, "pulse must be symmetric");
        }
        assert!(taps.iter().all(|&t| t >= 0.0));
        let centre = taps[taps.len() / 2];
        assert!(
            taps.iter().all(|&t| t <= centre + 1e-12),
            "centre tap must be max"
        );
    }

    #[test]
    fn long_run_settles_at_plus_minus_one() {
        // Paper Fig. 4(b): long equal-bit runs drive the frequency to the
        // tone. With comb normalization the settle value is exactly ±1.
        let p = ble_pulse(8);
        let bits = vec![true; 12];
        let w = p.shape(&bits);
        let mid = &w[5 * 8..7 * 8];
        for &v in mid {
            assert!((v - 1.0).abs() < 1e-9, "settled value {v}");
        }
        let bits = vec![false; 12];
        let w = p.shape(&bits);
        for &v in &w[5 * 8..7 * 8] {
            assert!((v + 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn alternating_bits_never_settle() {
        // Paper Fig. 4(a): random/alternating data keeps the frequency in
        // permanent transition — |f| stays well below the tone.
        let p = ble_pulse(8);
        let bits: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        let w = p.shape(&bits);
        let interior = &w[4 * 8..16 * 8];
        let max = interior.iter().cloned().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(
            max < 0.9,
            "alternating bits reached {max}, should stay below tone"
        );
    }

    #[test]
    fn transition_is_smooth() {
        // The Gaussian filter bounds the per-sample slope; a raw FSK switch
        // would jump by 2.0 in one sample.
        let p = ble_pulse(8);
        let mut bits = vec![false; 8];
        bits.extend(vec![true; 8]);
        let w = p.shape(&bits);
        for pair in w.windows(2) {
            assert!(
                (pair[1] - pair[0]).abs() < 0.5,
                "jump {}",
                (pair[1] - pair[0]).abs()
            );
        }
    }

    #[test]
    fn output_length_and_alignment() {
        let p = ble_pulse(4);
        let bits = vec![true, false, true];
        let w = p.shape(&bits);
        assert_eq!(w.len(), 12);
        // Bit centres carry the right sign even for single bits.
        assert!(w[2 + 4] < 0.0, "centre of bit 1 (false) must be negative");
    }

    #[test]
    fn empty_bits_empty_waveform() {
        assert!(ble_pulse(8).shape(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "sps > 0")]
    fn zero_sps_panics() {
        GaussianPulse::new(0.5, 0, 2);
    }

    #[test]
    fn settling_time_grows_as_bt_shrinks() {
        // Tighter filters (smaller BT) need longer runs to settle — the
        // physical reason BLoc needs *long* 0/1 sequences.
        let settle_samples = |bt: f64| {
            let p = GaussianPulse::new(bt, 8, 4);
            let mut bits = vec![false; 10];
            bits.extend(vec![true; 10]);
            let w = p.shape(&bits);
            // First sample after the transition point where w > 0.99:
            w.iter()
                .skip(10 * 8)
                .position(|&v| v > 0.99)
                .unwrap_or(usize::MAX)
        };
        assert!(settle_samples(0.3) > settle_samples(1.0));
    }

    proptest! {
        #[test]
        fn prop_waveform_bounded(bits in proptest::collection::vec(any::<bool>(), 1..64)) {
            let p = ble_pulse(8);
            for v in p.shape(&bits) {
                prop_assert!(v.abs() <= 1.0 + 1e-9);
            }
        }

        #[test]
        fn prop_polarity_symmetry(bits in proptest::collection::vec(any::<bool>(), 1..32)) {
            // Inverting every bit negates the waveform.
            let p = ble_pulse(4);
            let w1 = p.shape(&bits);
            let inv: Vec<bool> = bits.iter().map(|b| !b).collect();
            let w2 = p.shape(&inv);
            for (a, b) in w1.iter().zip(&w2) {
                prop_assert!((a + b).abs() < 1e-9);
            }
        }
    }
}
