//! Packet detection and timing synchronization.
//!
//! The simulator hands the CSI extractor sample-aligned packets, but a
//! real anchor (like the paper's USRP receive chain) sees a continuous
//! sample stream and must *find* each packet first. This module provides
//! the standard mechanism: correlate the stream against the modulated
//! preamble + access address (40 known bits — the sync word BLoc's
//! overhearing anchors already know from the `CONNECT_IND`), take the
//! normalized correlation peak as the packet start, and gate on a
//! threshold so noise does not trigger.
//!
//! The correlation is magnitude-based, so it is immune to the unknown
//! channel gain, carrier phase, and the oscillator offsets that BLoc
//! later cancels.

use bloc_ble::access_address::AccessAddress;
use bloc_ble::packet::bytes_to_bits;
use bloc_num::{complex, C64};

use crate::modulator::GfskModulator;

/// A detected packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Sample index of the packet start (the first preamble sample).
    pub offset: usize,
    /// Normalized correlation at the peak, in `[0, 1]`.
    pub quality: f64,
}

/// The modulated reference waveform of `preamble ‖ access address` — the
/// 40-bit sync pattern every frame with this address begins with.
pub fn sync_reference(aa: AccessAddress, modem: &GfskModulator) -> Vec<C64> {
    let mut bytes = vec![aa.preamble()];
    bytes.extend_from_slice(&aa.to_bytes());
    modem.modulate(&bytes_to_bits(&bytes))
}

/// Normalized cross-correlation magnitude of `reference` against every
/// alignment of `stream`: output k = |⟨stream[k..], ref⟩| / (‖stream
/// window‖·‖ref‖). Output length is `stream.len() − reference.len() + 1`
/// (empty if the stream is shorter than the reference).
pub fn normalized_correlation(stream: &[C64], reference: &[C64]) -> Vec<f64> {
    let n = reference.len();
    if n == 0 || stream.len() < n {
        return Vec::new();
    }
    let ref_energy: f64 = reference.iter().map(|z| z.norm_sq()).sum();
    let ref_norm = ref_energy.sqrt();

    // Running window energy for the normalization.
    let mut window_energy: f64 = stream[..n].iter().map(|z| z.norm_sq()).sum();
    let mut out = Vec::with_capacity(stream.len() - n + 1);
    for k in 0..=stream.len() - n {
        if k > 0 {
            window_energy += stream[k + n - 1].norm_sq() - stream[k - 1].norm_sq();
        }
        let mut acc = complex::ZERO;
        for (s, r) in stream[k..k + n].iter().zip(reference) {
            acc += *s * r.conj();
        }
        let denom = (window_energy.max(0.0).sqrt() * ref_norm).max(f64::MIN_POSITIVE);
        out.push(acc.abs() / denom);
    }
    out
}

/// Scans a sample stream for a packet with the given access address.
/// Returns the best detection at or above `threshold` (0.5–0.8 is a
/// sensible range: a perfect match scores 1.0, noise scores ≪ 0.5).
pub fn detect_packet(
    stream: &[C64],
    aa: AccessAddress,
    modem: &GfskModulator,
    threshold: f64,
) -> Option<Detection> {
    let reference = sync_reference(aa, modem);
    let corr = normalized_correlation(stream, &reference);
    let (offset, &quality) = corr
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("correlations are finite"))?;
    (quality >= threshold).then_some(Detection { offset, quality })
}

/// Scans for *all* packets above threshold, suppressing overlapping
/// detections (two peaks within one sync length keep only the stronger).
pub fn detect_all_packets(
    stream: &[C64],
    aa: AccessAddress,
    modem: &GfskModulator,
    threshold: f64,
) -> Vec<Detection> {
    let reference = sync_reference(aa, modem);
    let corr = normalized_correlation(stream, &reference);
    let min_gap = reference.len();

    let mut detections: Vec<Detection> = Vec::new();
    for (offset, &quality) in corr.iter().enumerate() {
        if quality < threshold {
            continue;
        }
        // Local maximum within the stream of correlations:
        if offset > 0 && corr[offset - 1] >= quality {
            continue;
        }
        if offset + 1 < corr.len() && corr[offset + 1] > quality {
            continue;
        }
        match detections.last_mut() {
            Some(last) if offset - last.offset < min_gap => {
                if quality > last.quality {
                    *last = Detection { offset, quality };
                }
            }
            _ => detections.push(Detection { offset, quality }),
        }
    }
    detections
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impairments::apply_channel_gain;
    use crate::modulator::{GfskModulator, ModulatorConfig};
    use bloc_ble::channels::Channel;
    use bloc_ble::locpacket::LocalizationPacket;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn modem() -> GfskModulator {
        GfskModulator::new(ModulatorConfig::default())
    }

    fn noise(rng: &mut StdRng, n: usize, sigma: f64) -> Vec<C64> {
        (0..n)
            .map(|_| {
                let g = |rng: &mut StdRng| {
                    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    let u2: f64 = rng.gen();
                    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                };
                C64::new(sigma * g(rng), sigma * g(rng))
            })
            .collect()
    }

    /// A stream with a modulated localization packet buried at `offset`.
    fn stream_with_packet(
        rng: &mut StdRng,
        aa: AccessAddress,
        offset: usize,
        gain: C64,
        snr_db: f64,
    ) -> Vec<C64> {
        let packet =
            LocalizationPacket::build(Channel::data(5).unwrap(), aa, 0x555555, 8, 4).unwrap();
        let mut iq = modem().modulate(&packet.air_bits());
        apply_channel_gain(&mut iq, gain);
        let noise_sigma = gain.abs() / 10f64.powf(snr_db / 20.0) / 2f64.sqrt();
        let total = offset + iq.len() + 300;
        let mut stream = noise(rng, total, noise_sigma);
        for (k, z) in iq.iter().enumerate() {
            stream[offset + k] += *z;
        }
        stream
    }

    #[test]
    fn finds_packet_at_exact_offset() {
        let mut rng = StdRng::seed_from_u64(1);
        let aa = AccessAddress::generate(&mut rng);
        for offset in [0usize, 137, 500] {
            let stream = stream_with_packet(&mut rng, aa, offset, C64::from_polar(0.03, 1.2), 15.0);
            let det = detect_packet(&stream, aa, &modem(), 0.6).expect("packet present");
            assert_eq!(det.offset, offset, "wrong sync position");
            assert!(det.quality > 0.8, "quality {}", det.quality);
        }
    }

    #[test]
    fn gain_and_phase_invariant() {
        let mut rng = StdRng::seed_from_u64(2);
        let aa = AccessAddress::generate(&mut rng);
        for gain in [C64::from_polar(1.0, 0.0), C64::from_polar(1e-3, 2.7)] {
            let stream = stream_with_packet(&mut rng, aa, 64, gain, 20.0);
            let det = detect_packet(&stream, aa, &modem(), 0.6).expect("detect");
            assert_eq!(det.offset, 64);
        }
    }

    #[test]
    fn pure_noise_does_not_trigger() {
        let mut rng = StdRng::seed_from_u64(3);
        let aa = AccessAddress::generate(&mut rng);
        let stream = noise(&mut rng, 4000, 1.0);
        assert!(detect_packet(&stream, aa, &modem(), 0.6).is_none());
    }

    #[test]
    fn wrong_access_address_scores_low() {
        let mut rng = StdRng::seed_from_u64(4);
        let aa = AccessAddress::generate(&mut rng);
        let other = AccessAddress::generate(&mut rng);
        assert_ne!(aa, other);
        let stream = stream_with_packet(&mut rng, aa, 100, C64::from_polar(0.05, 0.0), 25.0);
        // Correlating for the wrong address must not lock onto this packet
        // with high quality.
        if let Some(det) = detect_packet(&stream, other, &modem(), 0.6) {
            assert!(det.quality < 0.75, "wrong-AA quality {}", det.quality);
        }
    }

    #[test]
    fn detects_multiple_packets() {
        let mut rng = StdRng::seed_from_u64(5);
        let aa = AccessAddress::generate(&mut rng);
        let a = stream_with_packet(&mut rng, aa, 50, C64::from_polar(0.05, 0.3), 20.0);
        let b = stream_with_packet(&mut rng, aa, 120, C64::from_polar(0.04, -1.0), 20.0);
        let mut stream = a;
        let gap = stream.len();
        stream.extend(b.iter());
        let dets = detect_all_packets(&stream, aa, &modem(), 0.6);
        assert_eq!(dets.len(), 2, "two packets expected: {dets:?}");
        assert_eq!(dets[0].offset, 50);
        assert_eq!(dets[1].offset, gap + 120);
    }

    #[test]
    fn short_stream_is_empty() {
        let mut rng = StdRng::seed_from_u64(6);
        let aa = AccessAddress::generate(&mut rng);
        let stream = noise(&mut rng, 10, 1.0);
        assert!(normalized_correlation(&stream, &sync_reference(aa, &modem())).is_empty());
        assert!(detect_packet(&stream, aa, &modem(), 0.5).is_none());
    }

    #[test]
    fn synced_packet_decodes_end_to_end() {
        // Detection → slice at the detected offset → demodulate → frame
        // decode: the full receive path a real anchor runs.
        let mut rng = StdRng::seed_from_u64(7);
        let aa = AccessAddress::generate(&mut rng);
        let channel = Channel::data(5).unwrap();
        let packet = LocalizationPacket::build(channel, aa, 0x555555, 8, 4).unwrap();
        let offset = 333;
        let stream = stream_with_packet(&mut rng, aa, offset, C64::from_polar(0.05, 0.9), 25.0);

        let det = detect_packet(&stream, aa, &modem(), 0.6).unwrap();
        let n_samples = packet.air_bits().len() * 8;
        let slice = &stream[det.offset..det.offset + n_samples];
        let bits = crate::demodulator::demodulate(slice, 8);
        let frame = bloc_ble::packet::Frame::decode_bits(&bits, channel, 0x555555)
            .expect("synced packet must decode");
        assert_eq!(frame, packet.frame);
    }
}
