//! Channel impairments applied at IQ level.
//!
//! The over-the-air effects the paper's testbed suffers and BLoc's
//! algorithms must survive: complex channel gain (attenuation + phase,
//! Eq. 1), multipath superposition (Eq. 2), additive white Gaussian noise,
//! carrier frequency offset, and the per-retune oscillator phase offsets
//! (§5.1: "every time this oscillator is used to tune the frequency, it
//! incurs a random phase offset").

use rand::Rng;

use bloc_num::C64;

/// Multiplies every sample by a complex channel gain `h` (single-tap
/// narrowband channel — for a 2 MHz BLE band, indoor delay spread ≪ symbol
/// time, so a one-tap model is exact to first order).
pub fn apply_channel_gain(iq: &mut [C64], h: C64) {
    for z in iq.iter_mut() {
        *z *= h;
    }
}

/// Superimposes multipath: `y[n] = Σ_p h_p · x[n − d_p]` with per-path
/// complex gains and integer sample delays. Samples before the first
/// arrival are zero (the receiver's capture window).
pub fn apply_multipath(iq: &[C64], paths: &[(C64, usize)]) -> Vec<C64> {
    let mut out = vec![bloc_num::complex::ZERO; iq.len()];
    for &(h, delay) in paths {
        for n in delay..iq.len() {
            out[n] += h * iq[n - delay];
        }
    }
    out
}

/// Adds complex AWGN at the given SNR (dB) relative to the mean power of
/// the signal currently in `iq`.
pub fn awgn<R: Rng + ?Sized>(iq: &mut [C64], snr_db: f64, rng: &mut R) {
    if iq.is_empty() {
        return;
    }
    let power: f64 = iq.iter().map(|z| z.norm_sq()).sum::<f64>() / iq.len() as f64;
    let noise_power = power / 10f64.powf(snr_db / 10.0);
    let sigma = (noise_power / 2.0).sqrt();
    for z in iq.iter_mut() {
        *z += C64::new(sigma * gaussian(rng), sigma * gaussian(rng));
    }
}

/// Applies a carrier frequency offset of `cfo_hz` at sample rate `fs`.
pub fn apply_cfo(iq: &mut [C64], cfo_hz: f64, fs: f64) {
    let dphi = 2.0 * std::f64::consts::PI * cfo_hz / fs;
    for (n, z) in iq.iter_mut().enumerate() {
        *z *= C64::cis(dphi * n as f64);
    }
}

/// Applies a constant oscillator phase offset (what a retune inflicts; the
/// quantity BLoc's Eq. 10 cancels).
pub fn apply_phase_offset(iq: &mut [C64], phi: f64) {
    apply_channel_gain(iq, C64::cis(phi));
}

/// A standard-normal sample via Box–Muller (keeps the crate independent of
/// `rand_distr`).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Draws a uniformly random phase in `[0, 2π)` — the model for oscillator
/// retune offsets.
pub fn random_phase<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.gen::<f64>() * 2.0 * std::f64::consts::PI
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn tone(n: usize) -> Vec<C64> {
        (0..n).map(|i| C64::cis(0.1 * i as f64)).collect()
    }

    #[test]
    fn gain_scales_power() {
        let mut iq = tone(100);
        apply_channel_gain(&mut iq, C64::from_polar(0.5, 1.0));
        let p: f64 = iq.iter().map(|z| z.norm_sq()).sum::<f64>() / 100.0;
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn multipath_single_path_is_gain_and_delay() {
        let iq = tone(32);
        let h = C64::from_polar(0.7, -0.3);
        let out = apply_multipath(&iq, &[(h, 3)]);
        assert_eq!(out[0], bloc_num::complex::ZERO);
        for n in 3..32 {
            let expect = h * iq[n - 3];
            assert!((out[n] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn multipath_superposition_is_linear() {
        let iq = tone(64);
        let p1 = (C64::from_polar(1.0, 0.0), 0usize);
        let p2 = (C64::from_polar(0.5, 1.5), 5usize);
        let both = apply_multipath(&iq, &[p1, p2]);
        let a = apply_multipath(&iq, &[p1]);
        let b = apply_multipath(&iq, &[p2]);
        for n in 0..64 {
            assert!((both[n] - (a[n] + b[n])).abs() < 1e-12);
        }
    }

    #[test]
    fn awgn_hits_requested_snr() {
        let mut rng = StdRng::seed_from_u64(1);
        let clean = tone(20_000);
        let mut noisy = clean.clone();
        awgn(&mut noisy, 10.0, &mut rng);
        let noise_p: f64 = noisy
            .iter()
            .zip(&clean)
            .map(|(a, b)| (*a - *b).norm_sq())
            .sum::<f64>()
            / 20_000.0;
        let signal_p: f64 = clean.iter().map(|z| z.norm_sq()).sum::<f64>() / 20_000.0;
        let snr_db = 10.0 * (signal_p / noise_p).log10();
        assert!((snr_db - 10.0).abs() < 0.3, "measured SNR {snr_db} dB");
    }

    #[test]
    fn awgn_on_empty_is_noop() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut iq: Vec<C64> = Vec::new();
        awgn(&mut iq, 10.0, &mut rng);
        assert!(iq.is_empty());
    }

    #[test]
    fn cfo_rotates_linearly() {
        let mut iq = vec![C64::real(1.0); 10];
        apply_cfo(&mut iq, 1000.0, 8e6);
        let step = (iq[1] * iq[0].conj()).arg();
        let expected = 2.0 * std::f64::consts::PI * 1000.0 / 8e6;
        assert!((step - expected).abs() < 1e-12);
    }

    #[test]
    fn phase_offset_preserves_magnitude() {
        let mut iq = tone(50);
        apply_phase_offset(&mut iq, 1.234);
        for (z, orig) in iq.iter().zip(tone(50)) {
            assert!((z.abs() - orig.abs()).abs() < 1e-12);
            assert!(
                ((z.arg() - orig.arg() - 1.234 + std::f64::consts::PI)
                    .rem_euclid(2.0 * std::f64::consts::PI)
                    - std::f64::consts::PI)
                    .abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..50_000).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn random_phase_covers_circle() {
        let mut rng = StdRng::seed_from_u64(4);
        let phases: Vec<f64> = (0..1000).map(|_| random_phase(&mut rng)).collect();
        assert!(phases
            .iter()
            .all(|&p| (0.0..2.0 * std::f64::consts::PI).contains(&p)));
        // All four quadrants occupied:
        for q in 0..4 {
            let lo = q as f64 * std::f64::consts::FRAC_PI_2;
            assert!(
                phases
                    .iter()
                    .any(|&p| p >= lo && p < lo + std::f64::consts::FRAC_PI_2),
                "quadrant {q} empty"
            );
        }
    }
}
