//! CSI measurement from localization packets — paper §4.
//!
//! "The wireless channel can simply be measured by taking the ratio of the
//! received symbol to the transmitted symbol. If the transmitted symbol is
//! x₀ and it is received as y₀ at the receiver, the channel h₀ at frequency
//! f₀ can be measured as h₀ = y₀/x₀."
//!
//! Concretely: during each stable window of a localization packet (where
//! the GFSK instantaneous frequency has converged to a tone), the receiver
//! solves the one-tap least-squares `h = Σ y·x* / Σ|x|²` against the known
//! transmit waveform. The two tone estimates are then combined into a
//! single per-band value by "averaging the channel amplitude and channel
//! phase separately" (paper §5 preamble).

use crate::modulator::GfskModulator;
use bloc_ble::locpacket::LocalizationPacket;
use bloc_num::angle::circular_mean;
use bloc_num::{complex, C64};

/// The per-band CSI measured from one localization packet.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BandCsi {
    /// Channel at the f₀ tone (0-bits).
    pub h0: C64,
    /// Channel at the f₁ tone (1-bits).
    pub h1: C64,
    /// Number of samples that entered the f₀ estimate.
    pub n0: usize,
    /// Number of samples that entered the f₁ estimate.
    pub n1: usize,
}

impl BandCsi {
    /// The single per-band channel value: amplitudes averaged
    /// arithmetically, phases averaged circularly (paper §5: "averaging the
    /// channel amplitude and channel phase separately and combining them
    /// into a single channel value"). Attributed to the band's centre
    /// frequency.
    pub fn combined(&self) -> C64 {
        let amp = (self.h0.abs() + self.h1.abs()) / 2.0;
        let phase = circular_mean(&[self.h0.arg(), self.h1.arg()]);
        C64::from_polar(amp, phase)
    }
}

/// Measures per-band CSI from the received IQ of one localization packet.
///
/// `rx_iq` must be sample-aligned with the packet's transmission (the
/// simulation provides perfect alignment; the paper's testbed achieves it
/// with shared clocks, §7). Returns `None` when no stable window produced a
/// usable estimate for *both* tones.
pub fn measure_band_csi(
    packet: &LocalizationPacket,
    rx_iq: &[C64],
    modulator: &GfskModulator,
    settle_bits: usize,
) -> Option<BandCsi> {
    let sps = modulator.config().sps;
    let reference = modulator.modulate(&packet.air_bits());
    if rx_iq.len() < reference.len() {
        return None;
    }

    // Least-squares accumulators per tone: h = Σ y·x* / Σ|x|².
    let mut num = [complex::ZERO; 2];
    let mut den = [0.0f64; 2];
    let mut count = [0usize; 2];

    for (start_bit, len_bits, tone) in packet.stable_windows(settle_bits) {
        let s = start_bit * sps;
        let e = (start_bit + len_bits) * sps;
        if e > reference.len() {
            continue;
        }
        let idx = usize::from(tone);
        for n in s..e {
            num[idx] += rx_iq[n] * reference[n].conj();
            den[idx] += reference[n].norm_sq();
            count[idx] += 1;
        }
    }

    if den[0] <= 0.0 || den[1] <= 0.0 {
        return None;
    }
    Some(BandCsi {
        h0: num[0] / den[0],
        h1: num[1] / den[1],
        n0: count[0],
        n1: count[1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impairments::{apply_channel_gain, apply_multipath, awgn};
    use crate::modulator::ModulatorConfig;
    use bloc_ble::access_address::AccessAddress;
    use bloc_ble::channels::Channel;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup(chan: u8) -> (LocalizationPacket, GfskModulator) {
        let mut rng = StdRng::seed_from_u64(31);
        let aa = AccessAddress::generate(&mut rng);
        let packet =
            LocalizationPacket::build(Channel::new(chan).unwrap(), aa, 0x123456, 8, 8).unwrap();
        (packet, GfskModulator::new(ModulatorConfig::default()))
    }

    #[test]
    fn recovers_known_channel_exactly() {
        let (packet, modem) = setup(5);
        let h = C64::from_polar(0.031, -2.2);
        let mut rx = modem.modulate(&packet.air_bits());
        apply_channel_gain(&mut rx, h);
        let csi = measure_band_csi(&packet, &rx, &modem, 2).unwrap();
        assert!((csi.h0 - h).abs() < 1e-9, "h0 {:?} vs {:?}", csi.h0, h);
        assert!((csi.h1 - h).abs() < 1e-9);
        assert!((csi.combined() - h).abs() < 1e-9);
        assert!(csi.n0 > 0 && csi.n1 > 0);
    }

    #[test]
    fn survives_noise_with_small_error() {
        let (packet, modem) = setup(20);
        let h = C64::from_polar(0.05, 1.0);
        let mut rng = StdRng::seed_from_u64(8);
        let mut rx = modem.modulate(&packet.air_bits());
        apply_channel_gain(&mut rx, h);
        awgn(&mut rx, 20.0, &mut rng);
        let csi = measure_band_csi(&packet, &rx, &modem, 2).unwrap();
        let err = (csi.combined() - h).abs() / h.abs();
        assert!(err < 0.1, "relative error {err}");
    }

    #[test]
    fn phase_stability_across_repeats() {
        // Fig. 8(a): repeated measurements of the same static channel give
        // consistent phase.
        let (packet, modem) = setup(16);
        let h = C64::from_polar(0.04, 0.7);
        let mut rng = StdRng::seed_from_u64(9);
        let mut phases = Vec::new();
        for _ in 0..10 {
            let mut rx = modem.modulate(&packet.air_bits());
            apply_channel_gain(&mut rx, h);
            awgn(&mut rx, 25.0, &mut rng);
            phases.push(
                measure_band_csi(&packet, &rx, &modem, 2)
                    .unwrap()
                    .combined()
                    .arg(),
            );
        }
        let spread = bloc_num::angle::circular_variance(&phases);
        assert!(spread < 1e-2, "phase spread across repeats: {spread}");
    }

    #[test]
    fn tone_estimates_differ_under_multipath_delay() {
        // A delayed path rotates differently at f₀ vs f₁ (tones 500 kHz
        // apart): h0 ≠ h1, but both remain finite and the combination is
        // sane.
        let (packet, modem) = setup(0);
        let tx = modem.modulate(&packet.air_bits());
        let rx = apply_multipath(
            &tx,
            &[
                (C64::from_polar(0.05, 0.0), 0),
                (C64::from_polar(0.04, 1.0), 40),
            ],
        );
        let csi = measure_band_csi(&packet, &rx, &modem, 2).unwrap();
        assert!(
            (csi.h0 - csi.h1).abs() > 1e-6,
            "delayed multipath must split the tones"
        );
        assert!(csi.combined().is_finite());
    }

    #[test]
    fn truncated_rx_rejected() {
        let (packet, modem) = setup(3);
        let rx = modem.modulate(&packet.air_bits());
        assert!(measure_band_csi(&packet, &rx[..rx.len() / 2], &modem, 2).is_none());
    }

    #[test]
    fn oversized_settle_leaves_no_windows() {
        let (packet, modem) = setup(3);
        let rx = modem.modulate(&packet.air_bits());
        // settle = 4 on 8-bit runs leaves zero stable bits.
        assert!(measure_band_csi(&packet, &rx, &modem, 4).is_none());
    }

    #[test]
    fn works_on_every_channel() {
        for chan in [0u8, 9, 18, 27, 36] {
            let (packet, modem) = setup(chan);
            let h = C64::from_polar(0.02, -1.0);
            let mut rx = modem.modulate(&packet.air_bits());
            apply_channel_gain(&mut rx, h);
            let csi = measure_band_csi(&packet, &rx, &modem, 2).unwrap();
            assert!((csi.combined() - h).abs() < 1e-9, "channel {chan}");
        }
    }

    #[test]
    fn combined_averages_amplitude_and_phase() {
        let csi = BandCsi {
            h0: C64::from_polar(1.0, 0.2),
            h1: C64::from_polar(3.0, 0.4),
            n0: 10,
            n1: 10,
        };
        let c = csi.combined();
        assert!((c.abs() - 2.0).abs() < 1e-12);
        assert!((c.arg() - 0.3).abs() < 1e-12);
    }
}
