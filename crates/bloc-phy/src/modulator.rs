//! GFSK modulation: bits → complex-baseband IQ samples.
//!
//! The transmitter integrates the Gaussian-shaped frequency waveform into
//! phase: `φ[n] = φ[n−1] + 2π·f_dev·w[n]/F_s`, `y[n] = e^{ιφ[n]}` — a
//! constant-envelope signal whose instantaneous frequency is `f_dev·w[n]`,
//! i.e. +250 kHz during settled 1-runs and −250 kHz during settled 0-runs
//! (the f₁/f₀ tones of paper Fig. 1b).

use crate::pulse::{ble_pulse, GaussianPulse};
use bloc_num::constants::{BLE_GFSK_DEVIATION_HZ, BLE_SYMBOL_RATE};
use bloc_num::C64;

/// Modulator parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModulatorConfig {
    /// Samples per symbol.
    pub sps: usize,
    /// Symbol rate, symbols/second (1 Msym/s for BLE 1M PHY).
    pub symbol_rate: f64,
    /// Peak frequency deviation, hertz (±250 kHz for BLE).
    pub deviation_hz: f64,
}

impl Default for ModulatorConfig {
    fn default() -> Self {
        Self {
            sps: 8,
            symbol_rate: BLE_SYMBOL_RATE,
            deviation_hz: BLE_GFSK_DEVIATION_HZ,
        }
    }
}

impl ModulatorConfig {
    /// Sample rate implied by the configuration, hertz.
    pub fn sample_rate(&self) -> f64 {
        self.symbol_rate * self.sps as f64
    }
}

/// A GFSK modulator (owns its pulse-shaping filter).
#[derive(Debug, Clone)]
pub struct GfskModulator {
    config: ModulatorConfig,
    pulse: GaussianPulse,
}

impl GfskModulator {
    /// A modulator with the BLE-standard Gaussian pulse (BT = 0.5).
    pub fn new(config: ModulatorConfig) -> Self {
        let pulse = ble_pulse(config.sps);
        Self { config, pulse }
    }

    /// A modulator with a custom pulse (for BT ablations).
    pub fn with_pulse(config: ModulatorConfig, pulse: GaussianPulse) -> Self {
        assert_eq!(pulse.sps(), config.sps, "pulse and config sps must agree");
        Self { config, pulse }
    }

    /// The configuration.
    pub fn config(&self) -> &ModulatorConfig {
        &self.config
    }

    /// Modulates on-air bits into unit-envelope IQ samples
    /// (`bits.len() · sps` of them), starting at phase `phase0`.
    pub fn modulate_from(&self, bits: &[bool], phase0: f64) -> Vec<C64> {
        let w = self.pulse.shape(bits);
        let dphi_scale =
            2.0 * std::f64::consts::PI * self.config.deviation_hz / self.config.sample_rate();
        let mut phase = phase0;
        w.into_iter()
            .map(|f_norm| {
                phase += dphi_scale * f_norm;
                C64::cis(phase)
            })
            .collect()
    }

    /// Modulates from phase 0.
    pub fn modulate(&self, bits: &[bool]) -> Vec<C64> {
        self.modulate_from(bits, 0.0)
    }

    /// The normalized frequency waveform (−1…+1) for a bit sequence —
    /// exposed so diagnostics (Fig. 4) can plot it without re-deriving it
    /// from phase.
    pub fn frequency_waveform(&self, bits: &[bool]) -> Vec<f64> {
        self.pulse.shape(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloc_num::fft::power_spectrum;
    use proptest::prelude::*;

    fn modulator() -> GfskModulator {
        GfskModulator::new(ModulatorConfig::default())
    }

    #[test]
    fn constant_envelope() {
        let m = modulator();
        let bits: Vec<bool> = (0..40).map(|i| i % 3 == 0).collect();
        for z in m.modulate(&bits) {
            assert!(
                (z.abs() - 1.0).abs() < 1e-12,
                "GFSK must be constant-envelope"
            );
        }
    }

    #[test]
    fn settled_run_is_a_tone() {
        // During a settled 1-run the phase advances 2π·f_dev/F_s per
        // sample: an exact complex exponential at +250 kHz.
        let m = modulator();
        let iq = m.modulate(&[true; 16]);
        let fs = m.config().sample_rate();
        let expected = 2.0 * std::f64::consts::PI * 250e3 / fs;
        // Interior samples (skip 4 settling symbols):
        for pair in iq[4 * 8..12 * 8].windows(2) {
            let dphi = (pair[1] * pair[0].conj()).arg();
            assert!((dphi - expected).abs() < 1e-9, "dphi {dphi} vs {expected}");
        }
    }

    #[test]
    fn zero_run_is_negative_tone() {
        let m = modulator();
        let iq = m.modulate(&[false; 16]);
        let fs = m.config().sample_rate();
        let expected = -2.0 * std::f64::consts::PI * 250e3 / fs;
        for pair in iq[4 * 8..12 * 8].windows(2) {
            let dphi = (pair[1] * pair[0].conj()).arg();
            assert!((dphi - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn tone_separation_is_one_megahertz() {
        // Paper footnote 2: "the separation between the two data bits is
        // just 1 MHz" — i.e. 2 × 500 kHz peak-to-peak... (2 × 250 kHz
        // deviation = 500 kHz? No: f₁ − f₀ = 2·f_dev = 500 kHz at BT→∞.)
        // For BLE, deviation is 250 kHz so tones sit 500 kHz apart at the
        // modulator; the paper's 1 MHz figure counts the occupied band
        // edges. We assert the modulator-level separation here.
        let m = modulator();
        let fs = m.config().sample_rate();
        let tone = |bit: bool| {
            let iq = m.modulate(&[bit; 16]);
            let dphi = (iq[8 * 8 + 1] * iq[8 * 8].conj()).arg();
            dphi * fs / (2.0 * std::f64::consts::PI)
        };
        let sep = tone(true) - tone(false);
        assert!((sep - 500e3).abs() < 1.0, "tone separation {sep}");
    }

    #[test]
    fn phase_continuity_across_transitions() {
        // CPFSK: no phase jumps anywhere, even at bit flips.
        let m = modulator();
        let bits: Vec<bool> = (0..32).map(|i| (i / 3) % 2 == 0).collect();
        let iq = m.modulate(&bits);
        let max_step = 2.0 * std::f64::consts::PI * 250e3 / m.config().sample_rate();
        for pair in iq.windows(2) {
            let dphi = (pair[1] * pair[0].conj()).arg().abs();
            assert!(
                dphi <= max_step + 1e-9,
                "phase step {dphi} exceeds deviation bound"
            );
        }
    }

    #[test]
    fn initial_phase_respected() {
        let m = modulator();
        let bits = vec![true; 4];
        let a = m.modulate_from(&bits, 0.0);
        let b = m.modulate_from(&bits, 1.0);
        for (x, y) in a.iter().zip(&b) {
            let rel = (*y * x.conj()).arg();
            assert!(
                (rel - 1.0).abs() < 1e-9,
                "constant phase offset must persist"
            );
        }
    }

    #[test]
    fn gaussian_suppresses_out_of_band_energy() {
        // Compare GFSK (BT = 0.5) against raw FSK (huge BT ≈ rectangular
        // pulse): the Gaussian spectrum must concentrate more energy inside
        // ±1 MHz. This is the "out-of-band noise" motivation of paper §4.
        let cfg = ModulatorConfig::default();
        let bits: Vec<bool> = (0..256).map(|i| (i * 7 + i / 3) % 2 == 0).collect();

        let in_band_fraction = |mod_: &GfskModulator| {
            let iq = mod_.modulate(&bits);
            let ps = power_spectrum(&iq, 2048);
            let n = ps.len();
            let fs = cfg.sample_rate();
            let total: f64 = ps.iter().sum();
            let inband: f64 = ps
                .iter()
                .enumerate()
                .filter(|(k, _)| {
                    let f = if *k <= n / 2 {
                        *k as f64
                    } else {
                        *k as f64 - n as f64
                    } * fs
                        / n as f64;
                    f.abs() <= 1.0e6
                })
                .map(|(_, p)| p)
                .sum();
            inband / total
        };

        let gfsk = GfskModulator::new(cfg.clone());
        let fsk = GfskModulator::with_pulse(
            cfg.clone(),
            crate::pulse::GaussianPulse::new(8.0, cfg.sps, 2),
        );
        assert!(
            in_band_fraction(&gfsk) > in_band_fraction(&fsk),
            "Gaussian shaping must concentrate in-band energy"
        );
        assert!(in_band_fraction(&gfsk) > 0.99);
    }

    proptest! {
        #[test]
        fn prop_output_length(bits in proptest::collection::vec(any::<bool>(), 0..64)) {
            let m = modulator();
            prop_assert_eq!(m.modulate(&bits).len(), bits.len() * 8);
        }

        #[test]
        fn prop_unit_envelope(bits in proptest::collection::vec(any::<bool>(), 1..48), p0 in -3.0..3.0f64) {
            let m = modulator();
            for z in m.modulate_from(&bits, p0) {
                prop_assert!((z.abs() - 1.0).abs() < 1e-12);
            }
        }
    }
}
