//! GFSK demodulation: IQ samples → bits, via quadrature discriminator.
//!
//! The discriminator computes the per-sample phase increment
//! `Δφ[n] = ∠(y[n]·y*[n−1])` (proportional to instantaneous frequency) and
//! decides each bit from the sign of the increment averaged over the
//! symbol. The simulation is sample-aligned, so no timing recovery is
//! needed — the anchors in the paper's testbed are likewise driven from a
//! shared clock (§7).

use bloc_num::C64;

/// Demodulates sample-aligned GFSK IQ into bits (`sps` samples per symbol).
///
/// Robust to constant complex channel gain, carrier phase and amplitude
/// scaling (the discriminator only sees phase *differences*), and to
/// moderate noise (the per-symbol average integrates over `sps` samples).
pub fn demodulate(iq: &[C64], sps: usize) -> Vec<bool> {
    assert!(sps > 0, "sps must be positive");
    let n_sym = iq.len() / sps;
    let mut bits = Vec::with_capacity(n_sym);
    for s in 0..n_sym {
        let start = s * sps;
        let mut acc = 0.0;
        for n in start.max(1)..start + sps {
            acc += (iq[n] * iq[n - 1].conj()).arg();
        }
        bits.push(acc > 0.0);
    }
    bits
}

/// Soft demodulation: the mean phase increment per symbol, in radians per
/// sample. Used by the CSI extractor's sanity checks and by diagnostics.
pub fn soft_demodulate(iq: &[C64], sps: usize) -> Vec<f64> {
    assert!(sps > 0, "sps must be positive");
    let n_sym = iq.len() / sps;
    let mut out = Vec::with_capacity(n_sym);
    for s in 0..n_sym {
        let start = s * sps;
        let mut acc = 0.0;
        let mut count = 0;
        for n in start.max(1)..start + sps {
            acc += (iq[n] * iq[n - 1].conj()).arg();
            count += 1;
        }
        out.push(if count > 0 { acc / count as f64 } else { 0.0 });
    }
    out
}

/// Counts bit errors between a transmitted and received sequence (shorter
/// length wins; extra bits in either are ignored).
pub fn bit_errors(tx: &[bool], rx: &[bool]) -> usize {
    tx.iter().zip(rx).filter(|(a, b)| a != b).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impairments::{apply_channel_gain, awgn};
    use crate::modulator::{GfskModulator, ModulatorConfig};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn modem() -> GfskModulator {
        GfskModulator::new(ModulatorConfig::default())
    }

    #[test]
    fn clean_roundtrip() {
        let m = modem();
        let bits: Vec<bool> = (0..64).map(|i| (i * 5 + 1) % 3 == 0).collect();
        let iq = m.modulate(&bits);
        let rx = demodulate(&iq, 8);
        assert_eq!(bit_errors(&bits, &rx), 0, "noiseless demod must be perfect");
    }

    #[test]
    fn roundtrip_with_channel_gain_and_phase() {
        let m = modem();
        let bits: Vec<bool> = (0..64).map(|i| i % 7 < 3).collect();
        let mut iq = m.modulate(&bits);
        apply_channel_gain(&mut iq, C64::from_polar(0.05, 2.1));
        let rx = demodulate(&iq, 8);
        assert_eq!(
            bit_errors(&bits, &rx),
            0,
            "discriminator must ignore complex gain"
        );
    }

    #[test]
    fn roundtrip_at_moderate_snr() {
        let m = modem();
        let mut rng = StdRng::seed_from_u64(5);
        let bits: Vec<bool> = (0..256).map(|i| (i * 11) % 4 < 2).collect();
        let mut iq = m.modulate(&bits);
        awgn(&mut iq, 15.0, &mut rng); // 15 dB SNR
        let rx = demodulate(&iq, 8);
        let errs = bit_errors(&bits, &rx);
        assert!(
            errs <= 2,
            "15 dB SNR should be near error-free, got {errs} errors"
        );
    }

    #[test]
    fn degrades_gracefully_at_low_snr() {
        let m = modem();
        let mut rng = StdRng::seed_from_u64(6);
        let bits: Vec<bool> = (0..512).map(|i| i % 2 == 0).collect();
        let mut iq = m.modulate(&bits);
        awgn(&mut iq, -10.0, &mut rng);
        let rx = demodulate(&iq, 8);
        let errs = bit_errors(&bits, &rx);
        // At −10 dB the demod is near chance but must not be systematically
        // inverted either.
        assert!(errs > 50 && errs < 462, "errors at -10 dB: {errs}/512");
    }

    #[test]
    fn soft_values_reflect_tones() {
        let m = modem();
        let mut bits = vec![false; 12];
        bits.extend(vec![true; 12]);
        let iq = m.modulate(&bits);
        let soft = soft_demodulate(&iq, 8);
        let fs = m.config().sample_rate();
        let tone = 2.0 * std::f64::consts::PI * 250e3 / fs;
        // Settled symbols sit at ∓tone.
        assert!((soft[6] + tone).abs() < 0.02 * tone);
        assert!((soft[18] - tone).abs() < 0.02 * tone);
    }

    #[test]
    fn empty_input() {
        assert!(demodulate(&[], 8).is_empty());
        assert!(soft_demodulate(&[], 8).is_empty());
    }

    proptest! {
        #[test]
        fn prop_noiseless_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..128)) {
            let m = modem();
            let iq = m.modulate(&bits);
            let rx = demodulate(&iq, 8);
            prop_assert_eq!(bit_errors(&bits, &rx), 0);
        }

        #[test]
        fn prop_gain_invariance(bits in proptest::collection::vec(any::<bool>(), 1..64),
                                r in 0.01..10.0f64, theta in -3.0..3.0f64) {
            let m = modem();
            let mut iq = m.modulate(&bits);
            apply_channel_gain(&mut iq, C64::from_polar(r, theta));
            prop_assert_eq!(bit_errors(&bits, &demodulate(&iq, 8)), 0);
        }
    }
}
