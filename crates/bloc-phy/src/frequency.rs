//! Instantaneous-frequency estimation and tone-settling detection.
//!
//! Paper Fig. 4 is about exactly this observable: with random data the
//! instantaneous frequency never settles (4a); with BLoc's long 0/1 runs it
//! converges to the f₀/f₁ tones for measurable stretches (4b). The CSI
//! extractor uses [`settled_regions`] both as a diagnostic and as a guard
//! that the stable windows advertised by the link layer really are stable
//! at the PHY output.

use bloc_num::C64;

/// Per-sample instantaneous frequency (hertz) from the phase increments of
/// an IQ stream at sample rate `fs`. Output length is `iq.len() − 1`.
pub fn instantaneous_frequency(iq: &[C64], fs: f64) -> Vec<f64> {
    iq.windows(2)
        .map(|w| (w[1] * w[0].conj()).arg() * fs / (2.0 * std::f64::consts::PI))
        .collect()
}

/// A maximal region of samples whose instantaneous frequency stays within
/// `tolerance_hz` of a constant.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SettledRegion {
    /// First sample index of the region (into the IQ stream).
    pub start: usize,
    /// Region length in samples.
    pub len: usize,
    /// Mean frequency of the region, hertz.
    pub freq_hz: f64,
}

/// Finds regions of at least `min_len` samples where the instantaneous
/// frequency varies by at most ±`tolerance_hz` around its running mean.
pub fn settled_regions(
    iq: &[C64],
    fs: f64,
    tolerance_hz: f64,
    min_len: usize,
) -> Vec<SettledRegion> {
    let inst = instantaneous_frequency(iq, fs);
    let mut regions = Vec::new();
    let mut i = 0;
    while i < inst.len() {
        // Grow a region greedily while every sample stays within tolerance
        // of the region's running mean.
        let mut j = i;
        let mut sum = 0.0;
        while j < inst.len() {
            let candidate_mean = (sum + inst[j]) / (j - i + 1) as f64;
            let ok = inst[i..=j]
                .iter()
                .all(|&f| (f - candidate_mean).abs() <= tolerance_hz);
            if ok {
                sum += inst[j];
                j += 1;
            } else {
                break;
            }
        }
        let len = j - i;
        if len >= min_len {
            regions.push(SettledRegion {
                start: i,
                len,
                freq_hz: sum / len as f64,
            });
            i = j;
        } else {
            i += 1;
        }
    }
    regions
}

/// Estimates the carrier frequency offset of a received packet, given the
/// known transmitted bits: the mean difference between the received and
/// reference per-sample phase increments. Data-independent (the modulation
/// cancels term by term), noise-averaged over the whole packet.
///
/// This is how a real anchor would *measure* the tag CFO that
/// `bloc-chan`'s sounder injects — and why CFO cannot simply be calibrated
/// away for tone-pair ranging: the estimate is only as fresh as the last
/// packet, while the offset drifts packet to packet.
pub fn estimate_cfo(rx: &[C64], reference: &[C64], fs: f64) -> Option<f64> {
    let n = rx.len().min(reference.len());
    if n < 2 {
        return None;
    }
    // Average the rotation of (rx · ref*) between successive samples —
    // a phase-safe mean (no unwrapping needed).
    let mut acc = bloc_num::complex::ZERO;
    for k in 1..n {
        let d = (rx[k] * reference[k].conj()) * (rx[k - 1] * reference[k - 1].conj()).conj();
        acc += d;
    }
    Some(acc.arg() * fs / (2.0 * std::f64::consts::PI))
}

/// Classifies a settled region as the f₀ tone (−deviation), the f₁ tone
/// (+deviation), or neither, with a ±30 % acceptance band.
pub fn classify_tone(region: &SettledRegion, deviation_hz: f64) -> Option<bool> {
    let rel = region.freq_hz / deviation_hz;
    if (rel - 1.0).abs() < 0.3 {
        Some(true)
    } else if (rel + 1.0).abs() < 0.3 {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulator::{GfskModulator, ModulatorConfig};

    fn modem() -> GfskModulator {
        GfskModulator::new(ModulatorConfig::default())
    }

    #[test]
    fn pure_tone_frequency_estimated() {
        let fs = 8e6;
        let f = 250e3;
        let iq: Vec<C64> = (0..100)
            .map(|n| C64::cis(2.0 * std::f64::consts::PI * f * n as f64 / fs))
            .collect();
        for est in instantaneous_frequency(&iq, fs) {
            assert!((est - f).abs() < 1.0);
        }
    }

    #[test]
    fn run_pattern_settles_random_data_does_not() {
        // The Fig. 4 contrast, asserted numerically.
        let m = modem();
        let fs = m.config().sample_rate();

        // (a) pseudo-random bits: no settled region of a full symbol.
        let random_bits: Vec<bool> = (0..64).map(|i| ((i * 37 + 11) % 64) % 2 == 0).collect();
        // make sure it has no run longer than 2
        let iq = m.modulate(&random_bits);
        let regions = settled_regions(&iq, fs, 5e3, 3 * 8);
        // alternating data may settle briefly; require: far fewer settled
        // samples than the run pattern achieves.
        let settled_random: usize = regions.iter().map(|r| r.len).sum();

        // (b) BLoc run pattern: long settled stretches at both tones.
        let mut run_bits = vec![false; 16];
        run_bits.extend(vec![true; 16]);
        run_bits.extend(vec![false; 16]);
        run_bits.extend(vec![true; 16]);
        let iq = m.modulate(&run_bits);
        let regions = settled_regions(&iq, fs, 5e3, 3 * 8);
        let settled_runs: usize = regions.iter().map(|r| r.len).sum();

        assert!(
            settled_runs > 4 * settled_random + 8,
            "runs settled {settled_runs} vs random {settled_random}"
        );
        // Both tones observed:
        let tones: Vec<Option<bool>> = regions.iter().map(|r| classify_tone(r, 250e3)).collect();
        assert!(
            tones.contains(&Some(true)) && tones.contains(&Some(false)),
            "{tones:?}"
        );
    }

    #[test]
    fn settled_region_frequencies_match_tones() {
        let m = modem();
        let fs = m.config().sample_rate();
        let mut bits = vec![false; 12];
        bits.extend(vec![true; 12]);
        let iq = m.modulate(&bits);
        let regions = settled_regions(&iq, fs, 2e3, 2 * 8);
        assert!(
            regions.len() >= 2,
            "expected two tone regions, got {regions:?}"
        );
        assert_eq!(classify_tone(&regions[0], 250e3), Some(false));
        assert_eq!(classify_tone(regions.last().unwrap(), 250e3), Some(true));
    }

    #[test]
    fn cfo_estimation_recovers_known_offset() {
        let m = modem();
        let fs = m.config().sample_rate();
        let bits: Vec<bool> = (0..128).map(|i| (i * 13) % 5 < 2).collect();
        let reference = m.modulate(&bits);
        for cfo in [-42e3f64, -5e3, 0.0, 12.5e3, 80e3] {
            let mut rx = reference.clone();
            crate::impairments::apply_cfo(&mut rx, cfo, fs);
            let est = estimate_cfo(&rx, &reference, fs).unwrap();
            assert!((est - cfo).abs() < 50.0, "cfo {cfo}: estimated {est}");
        }
    }

    #[test]
    fn cfo_estimation_survives_noise_and_gain() {
        use rand::SeedableRng;
        let m = modem();
        let fs = m.config().sample_rate();
        let bits: Vec<bool> = (0..256).map(|i| i % 7 < 4).collect();
        let reference = m.modulate(&bits);
        let mut rx = reference.clone();
        crate::impairments::apply_channel_gain(&mut rx, C64::from_polar(0.02, -2.0));
        crate::impairments::apply_cfo(&mut rx, 17e3, fs);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        crate::impairments::awgn(&mut rx, 15.0, &mut rng);
        let est = estimate_cfo(&rx, &reference, fs).unwrap();
        assert!((est - 17e3).abs() < 1.5e3, "estimated {est}");
    }

    #[test]
    fn cfo_estimation_degenerate_inputs() {
        assert!(estimate_cfo(&[], &[], 8e6).is_none());
        assert!(estimate_cfo(&[C64::real(1.0)], &[C64::real(1.0)], 8e6).is_none());
    }

    #[test]
    fn classify_rejects_mid_transition() {
        let r = SettledRegion {
            start: 0,
            len: 10,
            freq_hz: 10e3,
        };
        assert_eq!(classify_tone(&r, 250e3), None);
    }

    #[test]
    fn empty_and_single_sample() {
        assert!(instantaneous_frequency(&[], 8e6).is_empty());
        assert!(instantaneous_frequency(&[C64::real(1.0)], 8e6).is_empty());
        assert!(settled_regions(&[], 8e6, 1e3, 4).is_empty());
    }
}
