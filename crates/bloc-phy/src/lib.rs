//! # bloc-phy — the GFSK software-radio PHY of the BLoc workspace
//!
//! The paper implements BLoc "on USRP N210s … the BLE PHY layer on the USRP
//! platform in C as a patch to the UHD code" (§7). This crate is the Rust
//! replacement for that patch: a complete complex-baseband BLE GFSK chain.
//!
//! * [`pulse`] — the Gaussian frequency pulse (BT = 0.5) that makes "the
//!   frequency of the transmission … never static" (paper §4, Fig. 4a).
//! * [`modulator`] — phase-integrating GFSK modulation of on-air bits into
//!   IQ samples (±250 kHz deviation, 1 Msym/s).
//! * [`demodulator`] — quadrature-discriminator demodulation back to bits.
//! * [`frequency`] — instantaneous-frequency estimation and tone-settling
//!   detection (the observable behind Fig. 4b).
//! * [`impairments`] — what the air does to the signal: complex channel
//!   gain, AWGN, carrier frequency offset, oscillator phase offset.
//! * [`sync`] — packet detection and timing synchronization by
//!   preamble/access-address correlation (how an overhearing anchor finds
//!   the packets it measures).
//! * [`csi`] — BLoc's §4 contribution: measuring the wireless channel
//!   `h = y/x` during the stable 0-runs and 1-runs of a localization
//!   packet, and combining the two tone measurements into one per-band CSI
//!   value.
//!
//! The chain is exercised end-to-end by `bloc-chan`'s sounder in "phy"
//! fidelity mode and validated against the analytic channel model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csi;
pub mod demodulator;
pub mod frequency;
pub mod impairments;
pub mod modulator;
pub mod pulse;
pub mod sync;

pub use csi::{measure_band_csi, BandCsi};
pub use modulator::{GfskModulator, ModulatorConfig};
