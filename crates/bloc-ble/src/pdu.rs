//! Link-layer PDUs: advertising PDUs (including `CONNECT_IND`) and data
//! PDUs.
//!
//! BLoc's traffic pattern (paper §3) is: the tag advertises, the master
//! anchor sends `CONNECT_IND`, and thereafter master and tag exchange data
//! PDUs every connection event while slave anchors overhear. This module
//! implements the wire format of exactly those PDUs:
//!
//! * advertising header: `type(4) | rfu(1) | ChSel(1) | TxAdd(1) | RxAdd(1)`
//!   then an 8-bit length;
//! * data header: `LLID(2) | NESN(1) | SN(1) | MD(1) | rfu(3)` then an 8-bit
//!   length (4.2-style extended length);
//! * the 34-byte `CONNECT_IND` payload carrying the access address, CRC
//!   init, hop increment and channel map that seed [`crate::hopping`].

use crate::access_address::AccessAddress;
use crate::channels::ChannelMap;
use crate::error::BleError;
use crate::hopping::HopIncrement;

/// A 48-bit Bluetooth device address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceAddress(pub [u8; 6]);

impl DeviceAddress {
    /// Builds an address from its colon-notation MSB-first bytes.
    pub const fn new(bytes: [u8; 6]) -> Self {
        Self(bytes)
    }
}

/// Advertising PDU types (the subset BLoc's deployment uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AdvPduType {
    /// Connectable undirected advertising — what an off-the-shelf BLE tag
    /// broadcasts.
    AdvInd,
    /// Non-connectable advertising (beacon mode).
    AdvNonconnInd,
    /// Scannable undirected advertising.
    AdvScanInd,
    /// Scan request from a scanner.
    ScanReq,
    /// Scan response from the advertiser.
    ScanRsp,
    /// Connection request from an initiator — carries the link parameters.
    ConnectInd,
}

impl AdvPduType {
    /// The 4-bit on-air type code.
    pub fn code(self) -> u8 {
        match self {
            Self::AdvInd => 0x0,
            Self::AdvNonconnInd => 0x2,
            Self::AdvScanInd => 0x6,
            Self::ScanReq => 0x3,
            Self::ScanRsp => 0x4,
            Self::ConnectInd => 0x5,
        }
    }

    /// Parses a 4-bit type code.
    pub fn from_code(code: u8) -> Result<Self, BleError> {
        Ok(match code {
            0x0 => Self::AdvInd,
            0x2 => Self::AdvNonconnInd,
            0x6 => Self::AdvScanInd,
            0x3 => Self::ScanReq,
            0x4 => Self::ScanRsp,
            0x5 => Self::ConnectInd,
            other => return Err(BleError::UnknownPduType(other)),
        })
    }
}

/// An advertising-channel PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdvPdu {
    /// PDU type.
    pub pdu_type: AdvPduType,
    /// TxAdd flag (advertiser address is random).
    pub tx_add: bool,
    /// RxAdd flag (target address is random).
    pub rx_add: bool,
    /// Advertiser (or scanner, for ScanReq) address — the first 6 payload
    /// bytes of every advertising PDU we model.
    pub address: DeviceAddress,
    /// Remaining payload (AD structures, scan response data, or for
    /// `CONNECT_IND` the serialized [`ConnectInd`] link data).
    pub payload: Vec<u8>,
}

/// Maximum advertising payload after the address (spec: 31 bytes of AD
/// data; CONNECT_IND carries 28 bytes of LLData after the two addresses).
const MAX_ADV_PAYLOAD: usize = 255 - 6;

impl AdvPdu {
    /// Serializes header + payload (the byte string the CRC covers).
    pub fn encode(&self) -> Result<Vec<u8>, BleError> {
        if self.payload.len() > MAX_ADV_PAYLOAD {
            return Err(BleError::PayloadTooLong(self.payload.len()));
        }
        let len = 6 + self.payload.len();
        let header0 =
            self.pdu_type.code() | (u8::from(self.tx_add)) << 6 | (u8::from(self.rx_add)) << 7;
        let mut out = Vec::with_capacity(2 + len);
        out.push(header0);
        out.push(len as u8);
        out.extend_from_slice(&self.address.0);
        out.extend_from_slice(&self.payload);
        Ok(out)
    }

    /// Parses header + payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, BleError> {
        if bytes.len() < 2 {
            return Err(BleError::Truncated {
                expected: 2,
                actual: bytes.len(),
            });
        }
        let pdu_type = AdvPduType::from_code(bytes[0] & 0x0F)?;
        let tx_add = bytes[0] & 0x40 != 0;
        let rx_add = bytes[0] & 0x80 != 0;
        let len = bytes[1] as usize;
        if bytes.len() < 2 + len {
            return Err(BleError::Truncated {
                expected: 2 + len,
                actual: bytes.len(),
            });
        }
        if len < 6 {
            return Err(BleError::Truncated {
                expected: 8,
                actual: 2 + len,
            });
        }
        let mut address = [0u8; 6];
        address.copy_from_slice(&bytes[2..8]);
        Ok(Self {
            pdu_type,
            tx_add,
            rx_add,
            address: DeviceAddress(address),
            payload: bytes[8..2 + len].to_vec(),
        })
    }
}

/// LLID values of data-channel PDUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Llid {
    /// Continuation fragment of an L2CAP message (or empty PDU).
    DataContinuation,
    /// Start of an L2CAP message (BLoc's localization payloads travel as
    /// these).
    DataStart,
    /// LL control PDU.
    Control,
}

impl Llid {
    /// On-air 2-bit code.
    pub fn code(self) -> u8 {
        match self {
            Self::DataContinuation => 0b01,
            Self::DataStart => 0b10,
            Self::Control => 0b11,
        }
    }

    /// Parses the 2-bit code (0b00 is reserved).
    pub fn from_code(code: u8) -> Result<Self, BleError> {
        Ok(match code & 0b11 {
            0b01 => Self::DataContinuation,
            0b10 => Self::DataStart,
            0b11 => Self::Control,
            other => return Err(BleError::UnknownPduType(other)),
        })
    }
}

/// A data-channel PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DataPdu {
    /// Logical link ID.
    pub llid: Llid,
    /// Next expected sequence number (acknowledgement bit).
    pub nesn: bool,
    /// Sequence number.
    pub sn: bool,
    /// More data flag.
    pub md: bool,
    /// Payload bytes (≤ 255 with 4.2 extended length).
    pub payload: Vec<u8>,
}

impl DataPdu {
    /// An empty PDU (LLID = continuation, no payload) — what a device sends
    /// to keep the connection event alive.
    pub fn empty(nesn: bool, sn: bool) -> Self {
        Self {
            llid: Llid::DataContinuation,
            nesn,
            sn,
            md: false,
            payload: Vec::new(),
        }
    }

    /// Serializes header + payload.
    pub fn encode(&self) -> Result<Vec<u8>, BleError> {
        if self.payload.len() > 255 {
            return Err(BleError::PayloadTooLong(self.payload.len()));
        }
        let header0 = self.llid.code()
            | (u8::from(self.nesn)) << 2
            | (u8::from(self.sn)) << 3
            | (u8::from(self.md)) << 4;
        let mut out = Vec::with_capacity(2 + self.payload.len());
        out.push(header0);
        out.push(self.payload.len() as u8);
        out.extend_from_slice(&self.payload);
        Ok(out)
    }

    /// Parses header + payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, BleError> {
        if bytes.len() < 2 {
            return Err(BleError::Truncated {
                expected: 2,
                actual: bytes.len(),
            });
        }
        let llid = Llid::from_code(bytes[0])?;
        let len = bytes[1] as usize;
        if bytes.len() < 2 + len {
            return Err(BleError::Truncated {
                expected: 2 + len,
                actual: bytes.len(),
            });
        }
        Ok(Self {
            llid,
            nesn: bytes[0] & 0x04 != 0,
            sn: bytes[0] & 0x08 != 0,
            md: bytes[0] & 0x10 != 0,
            payload: bytes[2..2 + len].to_vec(),
        })
    }
}

/// The link data carried by a `CONNECT_IND` PDU: everything both sides (and
/// BLoc's overhearing anchors) need to follow the connection.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConnectInd {
    /// Access address of the new connection.
    pub access_address: AccessAddress,
    /// CRC init value (24 bits).
    pub crc_init: u32,
    /// Transmit window size, 1.25 ms units.
    pub win_size: u8,
    /// Transmit window offset, 1.25 ms units.
    pub win_offset: u16,
    /// Connection interval, 1.25 ms units.
    pub interval: u16,
    /// Slave latency (events).
    pub latency: u16,
    /// Supervision timeout, 10 ms units.
    pub timeout: u16,
    /// Channel map in force at connection setup.
    pub channel_map: ChannelMap,
    /// Hop increment (5..=16).
    pub hop: HopIncrement,
    /// Master sleep-clock accuracy code (0..=7).
    pub sca: u8,
}

impl ConnectInd {
    /// Serialized LLData length (22 bytes: AA 4 + CRCInit 3 + WinSize 1 +
    /// WinOffset 2 + Interval 2 + Latency 2 + Timeout 2 + ChM 5 + Hop/SCA 1).
    pub const LL_DATA_LEN: usize = 22;

    /// Serializes the LLData block.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::LL_DATA_LEN);
        out.extend_from_slice(&self.access_address.to_bytes());
        out.extend_from_slice(&crate::crc::crc_to_bytes(self.crc_init));
        out.push(self.win_size);
        out.extend_from_slice(&self.win_offset.to_le_bytes());
        out.extend_from_slice(&self.interval.to_le_bytes());
        out.extend_from_slice(&self.latency.to_le_bytes());
        out.extend_from_slice(&self.timeout.to_le_bytes());
        let mask = self.channel_map.mask();
        out.extend_from_slice(&mask.to_le_bytes()[..5]);
        out.push((self.hop.get() & 0x1F) | (self.sca & 0x07) << 5);
        debug_assert_eq!(out.len(), Self::LL_DATA_LEN);
        out
    }

    /// Parses an LLData block.
    pub fn decode(bytes: &[u8]) -> Result<Self, BleError> {
        if bytes.len() < Self::LL_DATA_LEN {
            return Err(BleError::Truncated {
                expected: Self::LL_DATA_LEN,
                actual: bytes.len(),
            });
        }
        let access_address = AccessAddress::from_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let crc_init = crate::crc::crc_from_bytes([bytes[4], bytes[5], bytes[6]]);
        let win_size = bytes[7];
        let win_offset = u16::from_le_bytes([bytes[8], bytes[9]]);
        let interval = u16::from_le_bytes([bytes[10], bytes[11]]);
        let latency = u16::from_le_bytes([bytes[12], bytes[13]]);
        let timeout = u16::from_le_bytes([bytes[14], bytes[15]]);
        let mut mask_bytes = [0u8; 8];
        mask_bytes[..5].copy_from_slice(&bytes[16..21]);
        let mask = u64::from_le_bytes(mask_bytes) & ((1u64 << 37) - 1);
        let channels: Vec<u8> = (0..37).filter(|c| (mask >> c) & 1 == 1).collect();
        let channel_map = ChannelMap::from_channels(&channels)?;
        let hop = HopIncrement::new(bytes[21] & 0x1F)?;
        let sca = bytes[21] >> 5;
        Ok(Self {
            access_address,
            crc_init,
            win_size,
            win_offset,
            interval,
            latency,
            timeout,
            channel_map,
            hop,
            sca,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn addr(seed: u8) -> DeviceAddress {
        DeviceAddress::new([seed, 2, 3, 4, 5, 6])
    }

    #[test]
    fn adv_pdu_roundtrip() {
        let pdu = AdvPdu {
            pdu_type: AdvPduType::AdvInd,
            tx_add: true,
            rx_add: false,
            address: addr(1),
            payload: vec![0x02, 0x01, 0x06],
        };
        let bytes = pdu.encode().unwrap();
        assert_eq!(AdvPdu::decode(&bytes).unwrap(), pdu);
    }

    #[test]
    fn adv_pdu_all_types_roundtrip() {
        for t in [
            AdvPduType::AdvInd,
            AdvPduType::AdvNonconnInd,
            AdvPduType::AdvScanInd,
            AdvPduType::ScanReq,
            AdvPduType::ScanRsp,
            AdvPduType::ConnectInd,
        ] {
            assert_eq!(AdvPduType::from_code(t.code()).unwrap(), t);
        }
        assert!(AdvPduType::from_code(0xF).is_err());
    }

    #[test]
    fn adv_pdu_truncated_rejected() {
        let pdu = AdvPdu {
            pdu_type: AdvPduType::AdvInd,
            tx_add: false,
            rx_add: false,
            address: addr(7),
            payload: vec![1, 2, 3, 4],
        };
        let bytes = pdu.encode().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                AdvPdu::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn data_pdu_roundtrip_with_flags() {
        for (nesn, sn, md) in [
            (false, false, false),
            (true, false, true),
            (false, true, false),
            (true, true, true),
        ] {
            let pdu = DataPdu {
                llid: Llid::DataStart,
                nesn,
                sn,
                md,
                payload: vec![0xFF; 10],
            };
            let bytes = pdu.encode().unwrap();
            assert_eq!(DataPdu::decode(&bytes).unwrap(), pdu);
        }
    }

    #[test]
    fn empty_data_pdu() {
        let pdu = DataPdu::empty(true, false);
        let bytes = pdu.encode().unwrap();
        assert_eq!(bytes.len(), 2);
        let back = DataPdu::decode(&bytes).unwrap();
        assert!(back.payload.is_empty());
        assert!(back.nesn && !back.sn);
    }

    #[test]
    fn oversized_payloads_rejected() {
        let pdu = DataPdu {
            llid: Llid::DataStart,
            nesn: false,
            sn: false,
            md: false,
            payload: vec![0; 256],
        };
        assert_eq!(pdu.encode(), Err(BleError::PayloadTooLong(256)));
    }

    #[test]
    fn reserved_llid_rejected() {
        assert!(Llid::from_code(0b00).is_err());
    }

    #[test]
    fn connect_ind_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let ci = ConnectInd {
            access_address: AccessAddress::generate(&mut rng),
            crc_init: 0xABCDEF,
            win_size: 2,
            win_offset: 10,
            interval: 24, // 30 ms
            latency: 0,
            timeout: 100,
            channel_map: ChannelMap::subsampled(2, 1).unwrap(),
            hop: HopIncrement::new(9).unwrap(),
            sca: 4,
        };
        let bytes = ci.encode();
        assert_eq!(bytes.len(), ConnectInd::LL_DATA_LEN);
        assert_eq!(ConnectInd::decode(&bytes).unwrap(), ci);
    }

    #[test]
    fn connect_ind_inside_adv_pdu() {
        let mut rng = StdRng::seed_from_u64(4);
        let ci = ConnectInd {
            access_address: AccessAddress::generate(&mut rng),
            crc_init: 0x123456,
            win_size: 1,
            win_offset: 0,
            interval: 6,
            latency: 0,
            timeout: 50,
            channel_map: ChannelMap::all(),
            hop: HopIncrement::new(5).unwrap(),
            sca: 0,
        };
        let pdu = AdvPdu {
            pdu_type: AdvPduType::ConnectInd,
            tx_add: false,
            rx_add: false,
            address: addr(9),
            payload: ci.encode(),
        };
        let decoded = AdvPdu::decode(&pdu.encode().unwrap()).unwrap();
        assert_eq!(ConnectInd::decode(&decoded.payload).unwrap(), ci);
    }

    proptest! {
        #[test]
        fn prop_data_pdu_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..256),
                                   nesn in any::<bool>(), sn in any::<bool>(), md in any::<bool>()) {
            let pdu = DataPdu { llid: Llid::DataStart, nesn, sn, md, payload };
            let bytes = pdu.encode().unwrap();
            prop_assert_eq!(DataPdu::decode(&bytes).unwrap(), pdu);
        }

        #[test]
        fn prop_adv_pdu_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..200),
                                  a in any::<[u8; 6]>()) {
            let pdu = AdvPdu {
                pdu_type: AdvPduType::AdvInd,
                tx_add: false,
                rx_add: true,
                address: DeviceAddress(a),
                payload,
            };
            let bytes = pdu.encode().unwrap();
            prop_assert_eq!(AdvPdu::decode(&bytes).unwrap(), pdu);
        }
    }
}
