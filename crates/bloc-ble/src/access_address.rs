//! Access addresses: the 32-bit sync words that begin every BLE frame.
//!
//! Advertising frames all use the fixed address `0x8E89BED6`; every
//! connection gets a fresh random address chosen by the initiator under the
//! spec's validity rules. BLoc's slave anchors key their overhearing on
//! these addresses (paper §3: anchors "passively listen for communication
//! between the tag and the anchor"), so generation and validation are
//! implemented for real.

use crate::error::BleError;
use rand::Rng;

/// The fixed advertising-channel access address.
pub const ADVERTISING_AA: u32 = 0x8E89_BED6;

/// A validated access address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccessAddress(u32);

impl AccessAddress {
    /// The advertising access address (always valid on advertising
    /// channels).
    pub const ADVERTISING: AccessAddress = AccessAddress(ADVERTISING_AA);

    /// Validates a data-channel access address against the spec rules (see
    /// [`validate`]).
    pub fn new_data(aa: u32) -> Result<Self, BleError> {
        validate(aa)?;
        Ok(Self(aa))
    }

    /// The raw 32-bit value.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }

    /// The 4 on-air bytes, least-significant byte first.
    pub fn to_bytes(self) -> [u8; 4] {
        self.0.to_le_bytes()
    }

    /// Parses 4 on-air bytes (no validity check — receivers must accept
    /// whatever the initiator chose; validity is enforced at generation).
    pub fn from_bytes(bytes: [u8; 4]) -> Self {
        Self(u32::from_le_bytes(bytes))
    }

    /// The preamble byte for this address: `0xAA` when the address LSB is 0
    /// (preamble must alternate into the first AA bit), else `0x55`.
    pub fn preamble(self) -> u8 {
        if self.0 & 1 == 0 {
            0xAA
        } else {
            0x55
        }
    }

    /// Generates a random valid data-channel access address by rejection
    /// sampling (the spec's own suggested approach).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let aa: u32 = rng.gen();
            if validate(aa).is_ok() {
                return Self(aa);
            }
        }
    }
}

/// Checks the data-channel access-address validity rules:
///
/// 1. not the advertising access address, and differing from it in at
///    least two bits;
/// 2. no more than six consecutive equal bits;
/// 3. the four octets not all equal;
/// 4. no more than 24 bit transitions overall;
/// 5. at least two transitions in the six most significant bits.
pub fn validate(aa: u32) -> Result<(), BleError> {
    let err = || BleError::InvalidAccessAddress(aa);

    if aa == ADVERTISING_AA || (aa ^ ADVERTISING_AA).count_ones() < 2 {
        return Err(err());
    }

    // Rule 2: runs of equal bits.
    let mut run = 1u32;
    for i in 1..32 {
        if (aa >> i) & 1 == (aa >> (i - 1)) & 1 {
            run += 1;
            if run > 6 {
                return Err(err());
            }
        } else {
            run = 1;
        }
    }

    // Rule 3: four equal octets.
    let b = aa.to_le_bytes();
    if b[0] == b[1] && b[1] == b[2] && b[2] == b[3] {
        return Err(err());
    }

    // Rule 4: total transitions over the 31 adjacent bit pairs.
    let transitions = ((aa ^ (aa >> 1)) & 0x7FFF_FFFF).count_ones();
    if transitions > 24 {
        return Err(err());
    }

    // Rule 5: ≥2 transitions among bits 26..=31 (5 adjacent pairs).
    if (((aa ^ (aa >> 1)) >> 26) & 0x1F).count_ones() < 2 {
        return Err(err());
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn advertising_aa_is_rejected_for_data() {
        assert!(AccessAddress::new_data(ADVERTISING_AA).is_err());
    }

    #[test]
    fn one_bit_from_advertising_rejected() {
        for bit in 0..32 {
            assert!(
                AccessAddress::new_data(ADVERTISING_AA ^ (1 << bit)).is_err(),
                "AA one bit from advertising AA must be invalid (bit {bit})"
            );
        }
    }

    #[test]
    fn long_runs_rejected() {
        assert!(validate(0x0000_0000).is_err()); // 32 consecutive zeros
        assert!(validate(0xFFFF_FFFF).is_err()); // 32 consecutive ones
                                                 // Exactly seven consecutive ones in bits 8..=14, otherwise mixed.
        let seven_ones = 0b0101_0010_0110_0101_0111_1111_0010_0101u32;
        assert!(validate(seven_ones).is_err());
        // Six consecutive ones in the same spot passes the run rule (may
        // still fail others, so assert only that the 7-run is the cause).
        let six_ones = seven_ones & !(1 << 8);
        // Six consecutive ones pass the run rule; other rules may still
        // reject, so no assertion either way — just exercise the path.
        let _ = validate(six_ones).is_err();
    }

    #[test]
    fn equal_octets_rejected() {
        assert!(validate(0x5A5A_5A5A).is_err());
    }

    #[test]
    fn too_many_transitions_rejected() {
        assert!(
            validate(0x5555_5555).is_err(),
            "alternating bits = 31 transitions"
        );
    }

    #[test]
    fn stable_msbs_rejected() {
        // Fewer than 2 transitions in the top six bits.
        let aa = 0xFC00_1234u32; // top six bits all ones → 0 transitions there
        assert!(validate(aa).is_err());
    }

    #[test]
    fn generation_yields_valid_addresses() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let aa = AccessAddress::generate(&mut rng);
            assert!(validate(aa.value()).is_ok());
        }
    }

    #[test]
    fn byte_roundtrip_and_preamble() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let aa = AccessAddress::generate(&mut rng);
            assert_eq!(AccessAddress::from_bytes(aa.to_bytes()), aa);
            let p = aa.preamble();
            // Preamble alternates and its last bit differs from AA bit 0.
            assert!(p == 0xAA || p == 0x55);
            assert_eq!(p == 0x55, aa.value() & 1 == 1);
        }
    }

    proptest! {
        #[test]
        fn prop_validate_agrees_with_rules(aa in any::<u32>()) {
            let valid = validate(aa).is_ok();
            // Independently recheck two of the rules.
            let runs_ok = {
                let mut ok = true;
                let mut run = 1;
                for i in 1..32 {
                    if (aa >> i) & 1 == (aa >> (i - 1)) & 1 {
                        run += 1;
                        if run > 6 { ok = false; break; }
                    } else { run = 1; }
                }
                ok
            };
            let not_adv = aa != ADVERTISING_AA;
            if valid {
                prop_assert!(runs_ok && not_adv);
            }
            if !runs_ok || !not_adv {
                prop_assert!(!valid);
            }
        }
    }
}
