//! LL Control PDUs: the in-connection procedures BLoc's deployment
//! exercises.
//!
//! Two procedures matter for the paper's experiments: **channel map
//! updates** (`LL_CHANNEL_MAP_IND`) — how the interference-avoidance
//! blacklisting of §8.6 actually reaches the hop engine, synchronized to a
//! connection-event *instant* so master and slave switch maps on the same
//! event — and **termination** (`LL_TERMINATE_IND`). Control PDUs travel
//! as data-channel PDUs with `LLID = 0b11`.

use crate::channels::ChannelMap;
use crate::error::BleError;
use crate::pdu::{DataPdu, Llid};

/// A link-layer control PDU (the subset this stack implements).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ControlPdu {
    /// `LL_CHANNEL_MAP_IND`: switch to `map` at connection event `instant`.
    ChannelMapInd {
        /// The new channel map.
        map: ChannelMap,
        /// Absolute connection-event counter at which the map takes
        /// effect.
        instant: u16,
    },
    /// `LL_TERMINATE_IND`: close the connection with a controller error
    /// code.
    TerminateInd {
        /// HCI-style error code (e.g. 0x13 = remote user terminated).
        error_code: u8,
    },
}

/// Opcode of `LL_CHANNEL_MAP_IND` (spec Vol 6 Part B §2.4.2).
pub const OPCODE_CHANNEL_MAP_IND: u8 = 0x01;
/// Opcode of `LL_TERMINATE_IND`.
pub const OPCODE_TERMINATE_IND: u8 = 0x02;

impl ControlPdu {
    /// Serializes the control payload (opcode + CtrData).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Self::ChannelMapInd { map, instant } => {
                let mut out = Vec::with_capacity(8);
                out.push(OPCODE_CHANNEL_MAP_IND);
                out.extend_from_slice(&map.mask().to_le_bytes()[..5]);
                out.extend_from_slice(&instant.to_le_bytes());
                out
            }
            Self::TerminateInd { error_code } => vec![OPCODE_TERMINATE_IND, *error_code],
        }
    }

    /// Parses a control payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, BleError> {
        match bytes.first() {
            Some(&OPCODE_CHANNEL_MAP_IND) => {
                if bytes.len() < 8 {
                    return Err(BleError::Truncated {
                        expected: 8,
                        actual: bytes.len(),
                    });
                }
                let mut mask_bytes = [0u8; 8];
                mask_bytes[..5].copy_from_slice(&bytes[1..6]);
                let mask = u64::from_le_bytes(mask_bytes) & ((1u64 << 37) - 1);
                let channels: Vec<u8> = (0..37u8).filter(|c| (mask >> c) & 1 == 1).collect();
                let map = ChannelMap::from_channels(&channels)?;
                let instant = u16::from_le_bytes([bytes[6], bytes[7]]);
                Ok(Self::ChannelMapInd { map, instant })
            }
            Some(&OPCODE_TERMINATE_IND) => {
                if bytes.len() < 2 {
                    return Err(BleError::Truncated {
                        expected: 2,
                        actual: bytes.len(),
                    });
                }
                Ok(Self::TerminateInd {
                    error_code: bytes[1],
                })
            }
            Some(&other) => Err(BleError::UnknownPduType(other)),
            None => Err(BleError::Truncated {
                expected: 1,
                actual: 0,
            }),
        }
    }

    /// Wraps this control payload in a data-channel PDU (`LLID = 0b11`).
    pub fn to_data_pdu(&self, nesn: bool, sn: bool) -> DataPdu {
        DataPdu {
            llid: Llid::Control,
            nesn,
            sn,
            md: false,
            payload: self.encode(),
        }
    }

    /// Extracts a control PDU from a data-channel PDU, if it is one.
    pub fn from_data_pdu(pdu: &DataPdu) -> Option<Result<Self, BleError>> {
        (pdu.llid == Llid::Control).then(|| Self::decode(&pdu.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn channel_map_ind_roundtrip() {
        let pdu = ControlPdu::ChannelMapInd {
            map: ChannelMap::subsampled(3, 1).unwrap(),
            instant: 1234,
        };
        assert_eq!(ControlPdu::decode(&pdu.encode()).unwrap(), pdu);
    }

    #[test]
    fn terminate_roundtrip() {
        let pdu = ControlPdu::TerminateInd { error_code: 0x13 };
        assert_eq!(ControlPdu::decode(&pdu.encode()).unwrap(), pdu);
    }

    #[test]
    fn travels_inside_data_pdu() {
        let ctrl = ControlPdu::ChannelMapInd {
            map: ChannelMap::all(),
            instant: 7,
        };
        let data = ctrl.to_data_pdu(true, false);
        assert_eq!(data.llid, Llid::Control);
        let bytes = data.encode().unwrap();
        let back = DataPdu::decode(&bytes).unwrap();
        let parsed = ControlPdu::from_data_pdu(&back)
            .expect("is control")
            .unwrap();
        assert_eq!(parsed, ctrl);
    }

    #[test]
    fn non_control_pdu_is_none() {
        let data = DataPdu {
            llid: Llid::DataStart,
            nesn: false,
            sn: false,
            md: false,
            payload: vec![1],
        };
        assert!(ControlPdu::from_data_pdu(&data).is_none());
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(matches!(
            ControlPdu::decode(&[]),
            Err(BleError::Truncated { .. })
        ));
        assert!(matches!(
            ControlPdu::decode(&[OPCODE_CHANNEL_MAP_IND, 1, 2]),
            Err(BleError::Truncated { .. })
        ));
        assert!(matches!(
            ControlPdu::decode(&[0x77]),
            Err(BleError::UnknownPduType(0x77))
        ));
        // A map with < 2 channels is invalid even if well-framed.
        let bad = [OPCODE_CHANNEL_MAP_IND, 0x01, 0, 0, 0, 0, 0, 0];
        assert!(matches!(
            ControlPdu::decode(&bad),
            Err(BleError::EmptyChannelMap)
        ));
    }

    proptest! {
        #[test]
        fn prop_channel_map_roundtrip(bits in proptest::collection::vec(0u8..37, 2..37),
                                      instant in any::<u16>()) {
            if let Ok(map) = ChannelMap::from_channels(&bits) {
                let pdu = ControlPdu::ChannelMapInd { map, instant };
                prop_assert_eq!(ControlPdu::decode(&pdu.encode()).unwrap(), pdu);
            }
        }
    }
}
