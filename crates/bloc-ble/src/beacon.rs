//! Advertising-data (AD) structures and beacon payloads.
//!
//! The commercial context of the paper (§1): "top technological companies
//! like Google, Apple, etc. have invested heavily in this domain through
//! iBeacons, Project Eddystone". BLoc localizes those very tags, so the
//! link layer here can parse and build their advertising payloads: the
//! generic length/type/data AD structure framing, Apple iBeacon frames,
//! and Google Eddystone-UID/-URL frames.

use crate::error::BleError;

/// Common AD types (Bluetooth Assigned Numbers §2.3).
pub mod ad_type {
    /// Flags.
    pub const FLAGS: u8 = 0x01;
    /// Complete list of 16-bit service UUIDs.
    pub const COMPLETE_16BIT_UUIDS: u8 = 0x03;
    /// Complete local name.
    pub const COMPLETE_LOCAL_NAME: u8 = 0x09;
    /// Service data, 16-bit UUID.
    pub const SERVICE_DATA_16BIT: u8 = 0x16;
    /// Manufacturer-specific data.
    pub const MANUFACTURER_DATA: u8 = 0xFF;
}

/// One AD structure: a type code and its data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdStructure {
    /// AD type code.
    pub ad_type: u8,
    /// Payload bytes (excludes the length and type bytes).
    pub data: Vec<u8>,
}

impl AdStructure {
    /// Serializes as `len | type | data`.
    pub fn encode(&self) -> Result<Vec<u8>, BleError> {
        if self.data.len() + 1 > 255 {
            return Err(BleError::PayloadTooLong(self.data.len()));
        }
        let mut out = Vec::with_capacity(2 + self.data.len());
        out.push((self.data.len() + 1) as u8);
        out.push(self.ad_type);
        out.extend_from_slice(&self.data);
        Ok(out)
    }
}

/// Parses a full AD payload into its structures. A zero length byte
/// terminates parsing (early-termination padding, per spec); running out
/// of bytes mid-structure is an error.
pub fn parse_ad(payload: &[u8]) -> Result<Vec<AdStructure>, BleError> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < payload.len() {
        let len = payload[i] as usize;
        if len == 0 {
            break;
        }
        if i + 1 + len > payload.len() {
            return Err(BleError::Truncated {
                expected: i + 1 + len,
                actual: payload.len(),
            });
        }
        out.push(AdStructure {
            ad_type: payload[i + 1],
            data: payload[i + 2..i + 1 + len].to_vec(),
        });
        i += 1 + len;
    }
    Ok(out)
}

/// Serializes a list of AD structures into one payload.
pub fn encode_ad(structures: &[AdStructure]) -> Result<Vec<u8>, BleError> {
    let mut out = Vec::new();
    for s in structures {
        out.extend(s.encode()?);
    }
    if out.len() > 31 {
        return Err(BleError::PayloadTooLong(out.len()));
    }
    Ok(out)
}

/// A recognized beacon frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Beacon {
    /// Apple iBeacon: 16-byte proximity UUID + major/minor + calibrated
    /// TX power at 1 m (dBm).
    IBeacon {
        /// Proximity UUID.
        uuid: [u8; 16],
        /// Major group id.
        major: u16,
        /// Minor id.
        minor: u16,
        /// Measured power at 1 m, dBm (signed).
        tx_power: i8,
    },
    /// Google Eddystone-UID: 10-byte namespace + 6-byte instance.
    EddystoneUid {
        /// Calibrated TX power at 0 m, dBm.
        tx_power: i8,
        /// Namespace id.
        namespace: [u8; 10],
        /// Instance id.
        instance: [u8; 6],
    },
    /// Google Eddystone-URL: compressed URL.
    EddystoneUrl {
        /// Calibrated TX power at 0 m, dBm.
        tx_power: i8,
        /// The expanded URL.
        url: String,
    },
}

const APPLE_COMPANY_ID: [u8; 2] = [0x4C, 0x00];
const EDDYSTONE_UUID: [u8; 2] = [0xAA, 0xFE];

/// Eddystone URL scheme prefixes (frame byte 0 of the encoded URL).
const URL_SCHEMES: [&str; 4] = ["http://www.", "https://www.", "http://", "https://"];
/// Eddystone URL expansion codes 0x00–0x0D.
const URL_EXPANSIONS: [&str; 14] = [
    ".com/", ".org/", ".edu/", ".net/", ".info/", ".biz/", ".gov/", ".com", ".org", ".edu", ".net",
    ".info", ".biz", ".gov",
];

impl Beacon {
    /// Builds the AD structures advertising this beacon.
    pub fn to_ad(&self) -> Result<Vec<AdStructure>, BleError> {
        let flags = AdStructure {
            ad_type: ad_type::FLAGS,
            data: vec![0x06],
        };
        match self {
            Beacon::IBeacon {
                uuid,
                major,
                minor,
                tx_power,
            } => {
                let mut data = Vec::with_capacity(25);
                data.extend_from_slice(&APPLE_COMPANY_ID);
                data.push(0x02); // iBeacon type
                data.push(0x15); // iBeacon length (21)
                data.extend_from_slice(uuid);
                data.extend_from_slice(&major.to_be_bytes());
                data.extend_from_slice(&minor.to_be_bytes());
                data.push(*tx_power as u8);
                Ok(vec![
                    flags,
                    AdStructure {
                        ad_type: ad_type::MANUFACTURER_DATA,
                        data,
                    },
                ])
            }
            Beacon::EddystoneUid {
                tx_power,
                namespace,
                instance,
            } => {
                let mut data = Vec::with_capacity(20);
                data.extend_from_slice(&EDDYSTONE_UUID);
                data.push(0x00); // UID frame
                data.push(*tx_power as u8);
                data.extend_from_slice(namespace);
                data.extend_from_slice(instance);
                data.extend_from_slice(&[0, 0]); // RFU
                Ok(vec![
                    AdStructure {
                        ad_type: ad_type::COMPLETE_16BIT_UUIDS,
                        data: EDDYSTONE_UUID.to_vec(),
                    },
                    AdStructure {
                        ad_type: ad_type::SERVICE_DATA_16BIT,
                        data,
                    },
                ])
            }
            Beacon::EddystoneUrl { tx_power, url } => {
                let mut data = Vec::new();
                data.extend_from_slice(&EDDYSTONE_UUID);
                data.push(0x10); // URL frame
                data.push(*tx_power as u8);
                data.extend(compress_url(url)?);
                Ok(vec![
                    AdStructure {
                        ad_type: ad_type::COMPLETE_16BIT_UUIDS,
                        data: EDDYSTONE_UUID.to_vec(),
                    },
                    AdStructure {
                        ad_type: ad_type::SERVICE_DATA_16BIT,
                        data,
                    },
                ])
            }
        }
    }

    /// Scans a parsed AD payload for a recognizable beacon frame.
    pub fn from_ad(structures: &[AdStructure]) -> Option<Beacon> {
        for s in structures {
            match s.ad_type {
                ad_type::MANUFACTURER_DATA => {
                    if let Some(b) = parse_ibeacon(&s.data) {
                        return Some(b);
                    }
                }
                ad_type::SERVICE_DATA_16BIT => {
                    if let Some(b) = parse_eddystone(&s.data) {
                        return Some(b);
                    }
                }
                _ => {}
            }
        }
        None
    }
}

fn parse_ibeacon(data: &[u8]) -> Option<Beacon> {
    if data.len() != 25 || data[..2] != APPLE_COMPANY_ID || data[2] != 0x02 || data[3] != 0x15 {
        return None;
    }
    let mut uuid = [0u8; 16];
    uuid.copy_from_slice(&data[4..20]);
    Some(Beacon::IBeacon {
        uuid,
        major: u16::from_be_bytes([data[20], data[21]]),
        minor: u16::from_be_bytes([data[22], data[23]]),
        tx_power: data[24] as i8,
    })
}

fn parse_eddystone(data: &[u8]) -> Option<Beacon> {
    if data.len() < 4 || data[..2] != EDDYSTONE_UUID {
        return None;
    }
    match data[2] {
        0x00 if data.len() >= 20 => {
            let mut namespace = [0u8; 10];
            namespace.copy_from_slice(&data[4..14]);
            let mut instance = [0u8; 6];
            instance.copy_from_slice(&data[14..20]);
            Some(Beacon::EddystoneUid {
                tx_power: data[3] as i8,
                namespace,
                instance,
            })
        }
        0x10 if data.len() >= 5 => {
            let scheme = *URL_SCHEMES.get(data[4] as usize)?;
            let mut url = String::from(scheme);
            for &b in &data[5..] {
                match URL_EXPANSIONS.get(b as usize) {
                    Some(exp) => url.push_str(exp),
                    None if (0x20..0x7F).contains(&b) => url.push(b as char),
                    None => return None,
                }
            }
            Some(Beacon::EddystoneUrl {
                tx_power: data[3] as i8,
                url,
            })
        }
        _ => None,
    }
}

/// Compresses a URL into the Eddystone-URL encoding. Errors when the
/// result would not fit the 17-byte frame budget.
fn compress_url(url: &str) -> Result<Vec<u8>, BleError> {
    let (scheme_code, rest) = URL_SCHEMES
        .iter()
        .enumerate()
        // Longest-prefix match: the "www." variants come first by length.
        .filter(|(_, s)| url.starts_with(**s))
        .max_by_key(|(_, s)| s.len())
        .map(|(i, s)| (i as u8, &url[s.len()..]))
        .ok_or(BleError::UnknownPduType(0x10))?;

    let mut out = vec![scheme_code];
    let mut rest = rest;
    'outer: while !rest.is_empty() {
        for (code, exp) in URL_EXPANSIONS.iter().enumerate() {
            // Prefer the '/'-suffixed expansions (they are earlier in the
            // table and one byte longer in text).
            if rest.starts_with(exp) {
                out.push(code as u8);
                rest = &rest[exp.len()..];
                continue 'outer;
            }
        }
        let c = rest.as_bytes()[0];
        if !(0x20..0x7F).contains(&c) {
            return Err(BleError::UnknownPduType(c));
        }
        out.push(c);
        rest = &rest[1..];
    }
    if out.len() > 18 {
        return Err(BleError::PayloadTooLong(out.len()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ad_roundtrip() {
        let structures = vec![
            AdStructure {
                ad_type: ad_type::FLAGS,
                data: vec![0x06],
            },
            AdStructure {
                ad_type: ad_type::COMPLETE_LOCAL_NAME,
                data: b"bloc-tag".to_vec(),
            },
        ];
        let bytes = encode_ad(&structures).unwrap();
        assert_eq!(parse_ad(&bytes).unwrap(), structures);
    }

    #[test]
    fn ad_zero_length_terminates() {
        let payload = [2, ad_type::FLAGS, 0x06, 0, 0xAB, 0xCD];
        let parsed = parse_ad(&payload).unwrap();
        assert_eq!(parsed.len(), 1, "zero length byte pads the rest");
    }

    #[test]
    fn ad_truncated_structure_errors() {
        let payload = [5, ad_type::FLAGS, 0x06]; // claims 5, has 2
        assert!(matches!(
            parse_ad(&payload),
            Err(BleError::Truncated { .. })
        ));
    }

    #[test]
    fn ibeacon_roundtrip() {
        let b = Beacon::IBeacon {
            uuid: [
                0xE2, 0xC5, 0x6D, 0xB5, 0xDF, 0xFB, 0x48, 0xD2, 0xB0, 0x60, 0xD0, 0xF5, 0xA7, 0x10,
                0x96, 0xE0,
            ],
            major: 1000,
            minor: 42,
            tx_power: -59,
        };
        let ad = b.to_ad().unwrap();
        let bytes = encode_ad(&ad).unwrap();
        assert!(bytes.len() <= 31, "iBeacon AD must fit legacy advertising");
        let parsed = Beacon::from_ad(&parse_ad(&bytes).unwrap()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn eddystone_uid_roundtrip() {
        let b = Beacon::EddystoneUid {
            tx_power: -20,
            namespace: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            instance: [11, 12, 13, 14, 15, 16],
        };
        let ad = b.to_ad().unwrap();
        let parsed = Beacon::from_ad(&parse_ad(&encode_ad(&ad).unwrap()).unwrap()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn eddystone_url_roundtrip() {
        for url in [
            "https://www.example.com/tag",
            "http://bloc.net",
            "https://a.org/x",
        ] {
            let b = Beacon::EddystoneUrl {
                tx_power: -10,
                url: url.to_string(),
            };
            let ad = b.to_ad().unwrap();
            let parsed = Beacon::from_ad(&parse_ad(&encode_ad(&ad).unwrap()).unwrap()).unwrap();
            assert_eq!(parsed, b, "{url}");
        }
    }

    #[test]
    fn url_compression_uses_expansions() {
        // "https://www." (1 scheme byte) + "example" + ".com/" (1 byte) + "t"
        let bytes = compress_url("https://www.example.com/t").unwrap();
        assert_eq!(bytes.len(), 1 + 7 + 1 + 1);
    }

    #[test]
    fn unknown_scheme_rejected() {
        assert!(compress_url("ftp://example.com").is_err());
        let b = Beacon::EddystoneUrl {
            tx_power: 0,
            url: "gopher://x".into(),
        };
        assert!(b.to_ad().is_err());
    }

    #[test]
    fn oversized_url_rejected() {
        let b = Beacon::EddystoneUrl {
            tx_power: 0,
            url: format!("https://{}.com", "x".repeat(40)),
        };
        assert!(b.to_ad().is_err());
    }

    #[test]
    fn non_beacon_ad_is_none() {
        let structures = vec![AdStructure {
            ad_type: ad_type::FLAGS,
            data: vec![0x06],
        }];
        assert_eq!(Beacon::from_ad(&structures), None);
        // Manufacturer data from another vendor:
        let other = vec![AdStructure {
            ad_type: ad_type::MANUFACTURER_DATA,
            data: vec![0xFF, 0xFF, 1, 2, 3],
        }];
        assert_eq!(Beacon::from_ad(&other), None);
    }

    proptest! {
        #[test]
        fn prop_ad_roundtrip(types in proptest::collection::vec(1u8..=255, 1..4),
                             lens in proptest::collection::vec(0usize..8, 1..4)) {
            let structures: Vec<AdStructure> = types
                .iter()
                .zip(&lens)
                .map(|(&t, &l)| AdStructure { ad_type: t, data: vec![0xA5; l] })
                .collect();
            if let Ok(bytes) = encode_ad(&structures) {
                prop_assert_eq!(parse_ad(&bytes).unwrap(), structures);
            }
        }

        #[test]
        fn prop_ibeacon_roundtrip(uuid in any::<[u8; 16]>(), major in any::<u16>(),
                                  minor in any::<u16>(), power in -100i8..20) {
            let b = Beacon::IBeacon { uuid, major, minor, tx_power: power };
            let ad = b.to_ad().unwrap();
            let parsed = Beacon::from_ad(&parse_ad(&encode_ad(&ad).unwrap()).unwrap()).unwrap();
            prop_assert_eq!(parsed, b);
        }
    }
}
