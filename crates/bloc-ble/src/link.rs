//! A minimal-but-real BLE connection state machine.
//!
//! BLoc's deployment (paper §3): "The BLE tag connects to one of these
//! anchor points (we call the connected anchor point the master) while the
//! other anchor points passively listen." This module models that exchange:
//! advertising → `CONNECT_IND` → connection events, each event hopping to a
//! new data channel and carrying a master packet and a slave (tag) response
//! — the two transmissions whose channels BLoc measures.

use crate::access_address::AccessAddress;
use crate::channels::{Channel, ChannelMap};
use crate::control::ControlPdu;
use crate::error::BleError;
use crate::hopping::{HopIncrement, HopSequence};
use crate::locpacket::LocalizationPacket;
use crate::packet::Frame;
use crate::pdu::{AdvPdu, AdvPduType, ConnectInd, DataPdu, DeviceAddress, Llid};
use rand::Rng;

/// Link-layer role of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Role {
    /// Connection initiator (BLoc's master anchor).
    Master,
    /// Advertiser that accepted the connection (the BLE tag).
    Slave,
}

/// Link-layer state (spec §4.5 state machine, the subset BLoc exercises).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LinkState {
    /// Not transmitting or receiving.
    Standby,
    /// Broadcasting ADV_IND on the advertising channels.
    Advertising,
    /// Actively scanning: issuing SCAN_REQ to advertisers and collecting
    /// SCAN_RSP payloads (how a deployment inventories the tags around
    /// it before picking one to localize).
    Scanning,
    /// Listening for a specific advertiser to connect to.
    Initiating {
        /// The advertiser being pursued.
        peer: DeviceAddress,
    },
    /// In a connection.
    Connected {
        /// Our role in the connection.
        role: Role,
    },
}

/// A device's link layer.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinkLayer {
    /// This device's address.
    pub address: DeviceAddress,
    /// Current state.
    pub state: LinkState,
}

impl LinkLayer {
    /// A device in standby.
    pub fn new(address: DeviceAddress) -> Self {
        Self {
            address,
            state: LinkState::Standby,
        }
    }

    /// Enters the advertising state (tag side).
    pub fn start_advertising(&mut self) -> Result<(), BleError> {
        match self.state {
            LinkState::Standby => {
                self.state = LinkState::Advertising;
                Ok(())
            }
            _ => Err(BleError::InvalidState("start_advertising")),
        }
    }

    /// Produces one ADV_IND PDU (valid only while advertising).
    pub fn advertise(&self) -> Result<AdvPdu, BleError> {
        match self.state {
            LinkState::Advertising => Ok(AdvPdu {
                pdu_type: AdvPduType::AdvInd,
                tx_add: false,
                rx_add: false,
                address: self.address,
                payload: vec![0x02, 0x01, 0x06], // Flags AD: LE General Discoverable
            }),
            _ => Err(BleError::InvalidState("advertise")),
        }
    }

    /// Enters the active-scanning state.
    pub fn start_scanning(&mut self) -> Result<(), BleError> {
        match self.state {
            LinkState::Standby => {
                self.state = LinkState::Scanning;
                Ok(())
            }
            _ => Err(BleError::InvalidState("start_scanning")),
        }
    }

    /// Scanner's reaction to an overheard ADV_IND: issue a SCAN_REQ to the
    /// advertiser (active scanning).
    pub fn scan_request(&self, adv: &AdvPdu) -> Result<AdvPdu, BleError> {
        if self.state != LinkState::Scanning {
            return Err(BleError::InvalidState("scan_request"));
        }
        if adv.pdu_type != AdvPduType::AdvInd && adv.pdu_type != AdvPduType::AdvScanInd {
            return Err(BleError::UnknownPduType(adv.pdu_type.code()));
        }
        Ok(AdvPdu {
            pdu_type: AdvPduType::ScanReq,
            tx_add: false,
            rx_add: false,
            // SCAN_REQ carries ScanA then AdvA; we model the scanner's
            // address field and keep the target in the payload.
            address: self.address,
            payload: adv.address.0.to_vec(),
        })
    }

    /// Advertiser's reaction to a SCAN_REQ addressed to it: a SCAN_RSP
    /// with the scan-response payload (e.g. a beacon's extra AD data).
    pub fn scan_response(
        &self,
        req: &AdvPdu,
        rsp_payload: Vec<u8>,
    ) -> Result<Option<AdvPdu>, BleError> {
        if self.state != LinkState::Advertising {
            return Err(BleError::InvalidState("scan_response"));
        }
        if req.pdu_type != AdvPduType::ScanReq {
            return Err(BleError::UnknownPduType(req.pdu_type.code()));
        }
        if req.payload != self.address.0 {
            return Ok(None); // addressed to someone else
        }
        Ok(Some(AdvPdu {
            pdu_type: AdvPduType::ScanRsp,
            tx_add: false,
            rx_add: false,
            address: self.address,
            payload: rsp_payload,
        }))
    }

    /// Enters the initiating state, pursuing `peer` (master-anchor side).
    pub fn start_initiating(&mut self, peer: DeviceAddress) -> Result<(), BleError> {
        match self.state {
            LinkState::Standby => {
                self.state = LinkState::Initiating { peer };
                Ok(())
            }
            _ => Err(BleError::InvalidState("start_initiating")),
        }
    }

    /// Initiator's reaction to an overheard ADV_IND: when it comes from the
    /// pursued peer, emit a `CONNECT_IND` and transition to Connected.
    /// Returns the connection handle and the CONNECT_IND PDU to transmit.
    pub fn on_adv_ind<R: Rng + ?Sized>(
        &mut self,
        adv: &AdvPdu,
        params: &ConnectionParams,
        rng: &mut R,
    ) -> Result<Option<(Connection, AdvPdu)>, BleError> {
        let LinkState::Initiating { peer } = self.state else {
            return Err(BleError::InvalidState("on_adv_ind"));
        };
        if adv.pdu_type != AdvPduType::AdvInd || adv.address != peer {
            return Ok(None); // not our peer; keep listening
        }
        let ll_data = ConnectInd {
            access_address: AccessAddress::generate(rng),
            crc_init: rng.gen::<u32>() & 0xFF_FFFF,
            win_size: 1,
            win_offset: 0,
            interval: params.interval_units,
            latency: 0,
            timeout: params.timeout_units,
            channel_map: params.channel_map,
            hop: params.hop,
            sca: 0,
        };
        let pdu = AdvPdu {
            pdu_type: AdvPduType::ConnectInd,
            tx_add: false,
            rx_add: false,
            address: self.address,
            payload: ll_data.encode(),
        };
        self.state = LinkState::Connected { role: Role::Master };
        let conn = Connection::new(ll_data, Role::Master)?;
        Ok(Some((conn, pdu)))
    }

    /// Advertiser's reaction to a received `CONNECT_IND`: accept and
    /// transition to Connected as slave.
    pub fn on_connect_ind(&mut self, pdu: &AdvPdu) -> Result<Connection, BleError> {
        if self.state != LinkState::Advertising {
            return Err(BleError::InvalidState("on_connect_ind"));
        }
        if pdu.pdu_type != AdvPduType::ConnectInd {
            return Err(BleError::UnknownPduType(pdu.pdu_type.code()));
        }
        let ll_data = ConnectInd::decode(&pdu.payload)?;
        self.state = LinkState::Connected { role: Role::Slave };
        Connection::new(ll_data, Role::Slave)
    }

    /// Overhearing anchors build a connection *follower* from the observed
    /// CONNECT_IND without being a party to it (paper §3: slave anchors
    /// "passively listen for communication between the tag and the
    /// anchor"). The follower tracks channels but never transmits.
    pub fn follow_connection(pdu: &AdvPdu) -> Result<Connection, BleError> {
        if pdu.pdu_type != AdvPduType::ConnectInd {
            return Err(BleError::UnknownPduType(pdu.pdu_type.code()));
        }
        let ll_data = ConnectInd::decode(&pdu.payload)?;
        // Followers are bookkept as slaves; they only ever observe.
        Connection::new(ll_data, Role::Slave)
    }

    /// Tears the link down to standby.
    pub fn disconnect(&mut self) {
        self.state = LinkState::Standby;
    }
}

/// Parameters the initiator chooses for a connection.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConnectionParams {
    /// Connection interval in 1.25 ms units (7.5 ms .. 4 s per spec).
    pub interval_units: u16,
    /// Supervision timeout in 10 ms units.
    pub timeout_units: u16,
    /// Channel map for adaptive hopping.
    pub channel_map: ChannelMap,
    /// Hop increment.
    pub hop: HopIncrement,
}

impl ConnectionParams {
    /// BLoc's defaults: 7.5 ms interval (fastest allowed — the paper notes
    /// BLE "hops through all channels 40 times every second", §6), full
    /// channel map, hop 5.
    pub fn bloc_default() -> Self {
        Self {
            interval_units: 6, // 7.5 ms
            timeout_units: 100,
            channel_map: ChannelMap::all(),
            hop: HopIncrement::new(5).expect("5 is a valid hop"),
        }
    }
}

/// One connection event: the channel and the two framed packets exchanged
/// on it (master → slave, then slave → master — the two transmissions
/// BLoc's anchors measure CSI from, paper §5.2).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConnectionEvent {
    /// Event counter value (0-based).
    pub event: u64,
    /// Data channel used for the whole event.
    pub channel: Channel,
    /// Master's transmission.
    pub master_frame: Frame,
    /// Slave's (tag's) response.
    pub slave_frame: Frame,
}

/// An established connection (either party's view, or a follower's).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Connection {
    /// Link data from the CONNECT_IND.
    pub params: ConnectInd,
    /// Our role.
    pub role: Role,
    hop: HopSequence,
    sn: bool,
    nesn: bool,
    /// A channel-map update awaiting its instant.
    pending_map: Option<(ChannelMap, u64)>,
}

impl Connection {
    fn new(params: ConnectInd, role: Role) -> Result<Self, BleError> {
        let hop = HopSequence::new(params.hop, params.channel_map, 0)?;
        Ok(Self {
            params,
            role,
            hop,
            sn: false,
            nesn: false,
            pending_map: None,
        })
    }

    /// Initiates an instant-synchronized channel-map update (the
    /// `LL_CHANNEL_MAP_IND` procedure): returns the control PDU to send to
    /// the peer and arms the local switch. The instant must lie in the
    /// future.
    pub fn schedule_channel_map(
        &mut self,
        map: ChannelMap,
        instant: u64,
    ) -> Result<ControlPdu, BleError> {
        if instant <= self.hop.event_counter {
            return Err(BleError::InvalidState(
                "schedule_channel_map: instant in the past",
            ));
        }
        self.pending_map = Some((map, instant));
        Ok(ControlPdu::ChannelMapInd {
            map,
            instant: instant as u16,
        })
    }

    /// Peer side: arms the switch from a received `LL_CHANNEL_MAP_IND`.
    pub fn on_channel_map_ind(&mut self, pdu: &ControlPdu) -> Result<(), BleError> {
        match pdu {
            ControlPdu::ChannelMapInd { map, instant } => {
                self.pending_map = Some((*map, *instant as u64));
                Ok(())
            }
            _ => Err(BleError::InvalidState(
                "on_channel_map_ind: not a map update",
            )),
        }
    }

    /// Applies a pending map whose instant has arrived (called at the top
    /// of every connection event).
    fn apply_pending_map(&mut self) {
        if let Some((map, instant)) = self.pending_map {
            if self.hop.event_counter >= instant {
                self.hop.set_channel_map(map);
                self.pending_map = None;
            }
        }
    }

    /// The channel of the next connection event, without advancing.
    pub fn peek_channel(&self) -> Channel {
        self.hop.peek_schedule(1)[0]
    }

    /// Number of completed connection events.
    pub fn events_elapsed(&self) -> u64 {
        self.hop.event_counter
    }

    /// Runs one connection event in which the master sends `master_payload`
    /// and the slave responds with `slave_payload` (both plain L2CAP-style
    /// data). Sequence numbers advance as if both packets were acked.
    pub fn advance_event(
        &mut self,
        master_payload: Vec<u8>,
        slave_payload: Vec<u8>,
    ) -> Result<ConnectionEvent, BleError> {
        self.apply_pending_map();
        let channel = self.hop.next_channel();
        let event = self.hop.event_counter - 1;

        let master_pdu = DataPdu {
            llid: Llid::DataStart,
            nesn: self.nesn,
            sn: self.sn,
            md: false,
            payload: master_payload,
        }
        .encode()?;
        let slave_pdu = DataPdu {
            llid: Llid::DataStart,
            nesn: !self.sn, // acks the master's SN
            sn: self.nesn,
            md: false,
            payload: slave_payload,
        }
        .encode()?;

        // Both sides saw each other's packet: toggle for the next event.
        self.sn = !self.sn;
        self.nesn = !self.nesn;

        Ok(ConnectionEvent {
            event,
            channel,
            master_frame: Frame::new(self.params.access_address, master_pdu, self.params.crc_init),
            slave_frame: Frame::new(self.params.access_address, slave_pdu, self.params.crc_init),
        })
    }

    /// Runs one **localization** connection event: both directions carry
    /// BLoc run-pattern payloads pre-whitened for the event's channel
    /// (paper §4). Returns the event plus the two localization packets with
    /// their stable-window metadata.
    pub fn advance_localization_event(
        &mut self,
        run_bits: usize,
        pairs: usize,
    ) -> Result<(ConnectionEvent, LocalizationPacket, LocalizationPacket), BleError> {
        self.apply_pending_map();
        let channel = self.hop.next_channel();
        let event = self.hop.event_counter - 1;

        let master_lp = LocalizationPacket::build(
            channel,
            self.params.access_address,
            self.params.crc_init,
            run_bits,
            pairs,
        )?;
        let slave_lp = LocalizationPacket::build(
            channel,
            self.params.access_address,
            self.params.crc_init,
            run_bits,
            pairs,
        )?;

        self.sn = !self.sn;
        self.nesn = !self.nesn;

        Ok((
            ConnectionEvent {
                event,
                channel,
                master_frame: master_lp.frame.clone(),
                slave_frame: slave_lp.frame.clone(),
            },
            master_lp,
            slave_lp,
        ))
    }

    /// Applies a channel-map update mid-connection (interference
    /// avoidance, paper §8.6).
    pub fn update_channel_map(&mut self, map: ChannelMap) {
        self.hop.set_channel_map(map);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::HashSet;

    fn tag_addr() -> DeviceAddress {
        DeviceAddress::new([0xC0, 1, 2, 3, 4, 5])
    }

    fn anchor_addr() -> DeviceAddress {
        DeviceAddress::new([0xC0, 9, 8, 7, 6, 5])
    }

    /// Full establishment dance: tag advertises, master initiates.
    fn establish() -> (Connection, Connection) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut tag = LinkLayer::new(tag_addr());
        let mut master = LinkLayer::new(anchor_addr());

        tag.start_advertising().unwrap();
        master.start_initiating(tag_addr()).unwrap();

        let adv = tag.advertise().unwrap();
        let (master_conn, connect_ind) = master
            .on_adv_ind(&adv, &ConnectionParams::bloc_default(), &mut rng)
            .unwrap()
            .unwrap();
        let tag_conn = tag.on_connect_ind(&connect_ind).unwrap();
        (master_conn, tag_conn)
    }

    #[test]
    fn establishment_reaches_connected() {
        let (m, t) = establish();
        assert_eq!(m.role, Role::Master);
        assert_eq!(t.role, Role::Slave);
        assert_eq!(m.params, t.params, "both sides must agree on link data");
    }

    #[test]
    fn both_sides_hop_identically() {
        let (mut m, mut t) = establish();
        for _ in 0..50 {
            let me = m.advance_event(vec![1], vec![2]).unwrap();
            let te = t.advance_event(vec![1], vec![2]).unwrap();
            assert_eq!(me.channel, te.channel);
            assert_eq!(me.event, te.event);
        }
    }

    #[test]
    fn hop_covers_all_channels_in_37_events() {
        let (mut m, _) = establish();
        let mut seen = HashSet::new();
        for _ in 0..37 {
            seen.insert(m.advance_event(vec![], vec![]).unwrap().channel.index());
        }
        assert_eq!(
            seen.len(),
            37,
            "one full cycle must visit every data channel"
        );
    }

    #[test]
    fn follower_tracks_the_same_schedule() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut tag = LinkLayer::new(tag_addr());
        let mut master = LinkLayer::new(anchor_addr());
        tag.start_advertising().unwrap();
        master.start_initiating(tag_addr()).unwrap();
        let adv = tag.advertise().unwrap();
        let (mut mconn, connect_ind) = master
            .on_adv_ind(&adv, &ConnectionParams::bloc_default(), &mut rng)
            .unwrap()
            .unwrap();
        let mut follower = LinkLayer::follow_connection(&connect_ind).unwrap();
        for _ in 0..20 {
            let ev = mconn.advance_event(vec![], vec![]).unwrap();
            let fv = follower.advance_event(vec![], vec![]).unwrap();
            assert_eq!(ev.channel, fv.channel);
        }
    }

    #[test]
    fn adv_from_wrong_peer_ignored() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut master = LinkLayer::new(anchor_addr());
        master.start_initiating(tag_addr()).unwrap();
        let stranger = AdvPdu {
            pdu_type: AdvPduType::AdvInd,
            tx_add: false,
            rx_add: false,
            address: DeviceAddress::new([9; 6]),
            payload: vec![],
        };
        let out = master
            .on_adv_ind(&stranger, &ConnectionParams::bloc_default(), &mut rng)
            .unwrap();
        assert!(out.is_none());
        assert!(matches!(master.state, LinkState::Initiating { .. }));
    }

    #[test]
    fn invalid_transitions_error() {
        let mut dev = LinkLayer::new(tag_addr());
        assert!(dev.advertise().is_err(), "standby device cannot advertise");
        dev.start_advertising().unwrap();
        assert!(dev.start_advertising().is_err(), "double start must fail");
        assert!(
            dev.start_initiating(anchor_addr()).is_err(),
            "advertiser cannot initiate"
        );
    }

    #[test]
    fn sequence_numbers_alternate() {
        let (mut m, _) = establish();
        let e0 = m.advance_event(vec![], vec![]).unwrap();
        let e1 = m.advance_event(vec![], vec![]).unwrap();
        let h0 = e0.master_frame.pdu[0];
        let h1 = e1.master_frame.pdu[0];
        assert_ne!(h0 & 0x08, h1 & 0x08, "SN must toggle between events");
    }

    #[test]
    fn localization_event_produces_clean_runs() {
        let (mut m, _) = establish();
        let (ev, mlp, slp) = m.advance_localization_event(8, 4).unwrap();
        assert_eq!(mlp.channel, ev.channel);
        assert_eq!(slp.channel, ev.channel);
        assert_eq!(mlp.stable_windows(2).len(), 8);
        // And the frames decode as standard BLE.
        let bits = ev.master_frame.encode_bits(ev.channel);
        assert!(Frame::decode_bits(&bits, ev.channel, m.params.crc_init).is_ok());
    }

    #[test]
    fn channel_map_update_respected() {
        let (mut m, _) = establish();
        let restricted = ChannelMap::subsampled(4, 0).unwrap();
        m.update_channel_map(restricted);
        for _ in 0..40 {
            let ev = m.advance_event(vec![], vec![]).unwrap();
            assert!(restricted.contains(ev.channel));
        }
    }

    #[test]
    fn active_scanning_roundtrip() {
        // Scanner inventories an advertising beacon: ADV_IND → SCAN_REQ →
        // SCAN_RSP carrying extra data.
        let mut tag = LinkLayer::new(tag_addr());
        let mut scanner = LinkLayer::new(anchor_addr());
        tag.start_advertising().unwrap();
        scanner.start_scanning().unwrap();

        let adv = tag.advertise().unwrap();
        let req = scanner.scan_request(&adv).unwrap();
        assert_eq!(req.pdu_type, AdvPduType::ScanReq);
        let rsp = tag
            .scan_response(&req, b"BLoc tag v1".to_vec())
            .unwrap()
            .unwrap();
        assert_eq!(rsp.pdu_type, AdvPduType::ScanRsp);
        assert_eq!(rsp.address, tag_addr());
        assert_eq!(rsp.payload, b"BLoc tag v1");
    }

    #[test]
    fn scan_request_for_other_device_ignored() {
        let mut tag = LinkLayer::new(tag_addr());
        tag.start_advertising().unwrap();
        let req = AdvPdu {
            pdu_type: AdvPduType::ScanReq,
            tx_add: false,
            rx_add: false,
            address: anchor_addr(),
            payload: vec![9; 6], // someone else's AdvA
        };
        assert_eq!(tag.scan_response(&req, vec![]).unwrap(), None);
    }

    #[test]
    fn scanning_state_transitions_enforced() {
        let mut dev = LinkLayer::new(tag_addr());
        assert!(
            dev.scan_request(&AdvPdu {
                pdu_type: AdvPduType::AdvInd,
                tx_add: false,
                rx_add: false,
                address: anchor_addr(),
                payload: vec![],
            })
            .is_err(),
            "standby device cannot scan"
        );
        dev.start_scanning().unwrap();
        assert!(dev.start_scanning().is_err(), "double start must fail");
    }

    #[test]
    fn channel_map_update_honors_instant() {
        // The LL_CHANNEL_MAP_IND procedure: both sides switch maps on the
        // same connection event, never before the instant.
        let (mut m, mut t) = establish();
        let restricted = ChannelMap::subsampled(3, 0).unwrap();
        // Burn a few events first.
        for _ in 0..4 {
            m.advance_event(vec![], vec![]).unwrap();
            t.advance_event(vec![], vec![]).unwrap();
        }
        let pdu = m.schedule_channel_map(restricted, 10).unwrap();
        t.on_channel_map_ind(&pdu).unwrap();

        for _ in 4..20 {
            let me = m.advance_event(vec![], vec![]).unwrap();
            let te = t.advance_event(vec![], vec![]).unwrap();
            assert_eq!(me.channel, te.channel, "sides must stay in lockstep");
            if me.event >= 10 {
                assert!(
                    restricted.contains(me.channel),
                    "event {} must use the new map",
                    me.event
                );
            }
        }
    }

    #[test]
    fn past_instant_rejected() {
        let (mut m, _) = establish();
        for _ in 0..5 {
            m.advance_event(vec![], vec![]).unwrap();
        }
        assert!(m.schedule_channel_map(ChannelMap::all(), 3).is_err());
    }

    #[test]
    fn disconnect_returns_to_standby() {
        let mut dev = LinkLayer::new(tag_addr());
        dev.start_advertising().unwrap();
        dev.disconnect();
        assert_eq!(dev.state, LinkState::Standby);
        dev.start_advertising().unwrap(); // allowed again
    }
}
