//! Channel-selection algorithm #1: `unmapped_next = (unmapped + hop) mod 37`.
//!
//! Paper §2.1: "the master and slave hop through the 37 non-broadcast bands,
//! jumping by f_hop bands every time a packet is exchanged… Since the total
//! number of bands is prime (37), the transmissions will hop through all
//! available bands before repeating." §5.1 builds BLoc's 80 MHz bandwidth
//! stitching on exactly this property, so the hop engine is a first-class
//! substrate here, including the remapping step used when a channel map
//! blacklists channels (exercised by the Fig. 11 interference experiment).

use crate::access_address::AccessAddress;
use crate::channels::{Channel, ChannelMap};
use crate::error::BleError;
use bloc_num::constants::BLE_NUM_DATA_CHANNELS;

const N: u64 = BLE_NUM_DATA_CHANNELS as u64;

/// Validated hop increment (spec range 5..=16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HopIncrement(u8);

impl HopIncrement {
    /// Validates a hop increment against the spec range 5..=16.
    pub fn new(hop: u8) -> Result<Self, BleError> {
        if (5..=16).contains(&hop) {
            Ok(Self(hop))
        } else {
            Err(BleError::InvalidHop(hop))
        }
    }

    /// The raw increment.
    pub fn get(self) -> u8 {
        self.0
    }
}

/// The hop state of one connection: produces the data channel used for each
/// successive connection event (channel-selection algorithm #1).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HopSequence {
    hop: HopIncrement,
    map: ChannelMap,
    last_unmapped: u8,
    /// Connection events elapsed (the first call to `next_channel` is
    /// event 0).
    pub event_counter: u64,
}

impl HopSequence {
    /// Creates the hop engine for a new connection.
    ///
    /// `first_unmapped` is the `lastUnmappedChannel` before the first event
    /// (spec initializes it to 0).
    pub fn new(hop: HopIncrement, map: ChannelMap, first_unmapped: u8) -> Result<Self, BleError> {
        if first_unmapped as usize >= BLE_NUM_DATA_CHANNELS {
            return Err(BleError::InvalidChannel(first_unmapped));
        }
        Ok(Self {
            hop,
            map,
            last_unmapped: first_unmapped,
            event_counter: 0,
        })
    }

    /// Creates the hop engine for a connection identified by its access
    /// address, seeding `lastUnmappedChannel` from the address value
    /// (`AA mod 37`). Both sides of a link derive the same starting
    /// channel from the AA alone, which is what makes closed-form
    /// re-synchronization after missed events possible: the whole
    /// schedule is a pure function of (AA, hop, event counter).
    pub fn for_connection(hop: HopIncrement, map: ChannelMap, aa: AccessAddress) -> Self {
        Self {
            hop,
            map,
            last_unmapped: (aa.value() as u64 % N) as u8,
            event_counter: 0,
        }
    }

    /// The channel map currently in force.
    pub fn channel_map(&self) -> ChannelMap {
        self.map
    }

    /// The `lastUnmappedChannel` the connection started from (the state
    /// at event 0), re-derived in closed form from the current state.
    pub fn first_unmapped(&self) -> u8 {
        let step = (self.hop.get() as u64 % N) * (self.event_counter % N) % N;
        ((self.last_unmapped as u64 + N - step) % N) as u8
    }

    /// The unmapped channel index when the event counter reads `event`,
    /// in closed form: `(first + event · hop) mod 37` — no replay of the
    /// intervening events. `unmapped_at(self.event_counter)` equals the
    /// current `lastUnmappedChannel`.
    pub fn unmapped_at(&self, event: u64) -> u8 {
        let step = (self.hop.get() as u64 % N) * (event % N) % N;
        ((self.first_unmapped() as u64 + step) % N) as u8
    }

    /// The data channel in use when the event counter reads `event`
    /// (what [`HopSequence::next_channel`] returned for that event),
    /// computed without mutating state. Event 0 is the pre-connection
    /// state: the mapped form of the starting channel.
    pub fn channel_at(&self, event: u64) -> Channel {
        self.map_unmapped(self.unmapped_at(event))
    }

    /// Re-synchronizes to an externally observed event counter (an
    /// anchor that missed packets, or whose counter drifted) by
    /// re-deriving `lastUnmappedChannel` in closed form instead of
    /// replaying — or aborting — the connection. Returns the data
    /// channel in force at that event.
    pub fn resync(&mut self, event: u64) -> Channel {
        self.last_unmapped = self.unmapped_at(event);
        self.event_counter = event;
        self.channel_at(event)
    }

    /// Applies a channel-map update (as the LL_CHANNEL_MAP_IND procedure
    /// would). Takes effect from the next event.
    pub fn set_channel_map(&mut self, map: ChannelMap) {
        self.map = map;
    }

    /// Advances to the next connection event and returns its data channel.
    ///
    /// Algorithm #1: `unmapped = (last + hop) mod 37`; if `unmapped` is in
    /// the channel map use it directly, otherwise remap via
    /// `usedChannels[unmapped mod numUsed]`.
    pub fn next_channel(&mut self) -> Channel {
        let unmapped = (self.last_unmapped + self.hop.get()) % BLE_NUM_DATA_CHANNELS as u8;
        self.last_unmapped = unmapped;
        self.event_counter += 1;
        self.map_unmapped(unmapped)
    }

    /// Applies the blacklist remap of algorithm #1 to an unmapped index.
    fn map_unmapped(&self, unmapped: u8) -> Channel {
        let candidate = Channel::data(unmapped).expect("mod 37 keeps index in range");
        if self.map.contains(candidate) {
            candidate
        } else {
            let used = self.map.used_channels();
            used[unmapped as usize % used.len()]
        }
    }

    /// The channels of the next `n` connection events, without mutating
    /// `self`.
    pub fn peek_schedule(&self, n: usize) -> Vec<Channel> {
        let mut clone = self.clone();
        (0..n).map(|_| clone.next_channel()).collect()
    }
}

/// Returns the number of distinct channels visited in one full cycle of 37
/// events — 37 for any valid hop, because 37 is prime. Exposed for tests
/// and documentation; BLoc's stitching (paper §5.1) depends on this being
/// the full set.
pub fn coverage(hop: HopIncrement) -> usize {
    let mut seen = [false; BLE_NUM_DATA_CHANNELS];
    let mut ch = 0u8;
    for _ in 0..BLE_NUM_DATA_CHANNELS {
        ch = (ch + hop.get()) % BLE_NUM_DATA_CHANNELS as u8;
        seen[ch as usize] = true;
    }
    seen.iter().filter(|&&s| s).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hop(h: u8) -> HopIncrement {
        HopIncrement::new(h).unwrap()
    }

    #[test]
    fn hop_range_validated() {
        assert!(HopIncrement::new(4).is_err());
        assert!(HopIncrement::new(17).is_err());
        assert!(HopIncrement::new(5).is_ok());
        assert!(HopIncrement::new(16).is_ok());
    }

    #[test]
    fn example_from_paper() {
        // Paper §2.1: "if the first transmission happens at channel 10, and
        // f_hop = 3, then the next transmission will be at channel 13."
        // (3 is outside the spec's 5..=16, so the paper's illustration uses
        // an illustrative hop; we check the arithmetic with hop = 5.)
        let mut seq = HopSequence::new(hop(5), ChannelMap::all(), 10).unwrap();
        assert_eq!(seq.next_channel().index(), 15);
        assert_eq!(seq.next_channel().index(), 20);
    }

    #[test]
    fn wraps_modulo_37() {
        let mut seq = HopSequence::new(hop(16), ChannelMap::all(), 30).unwrap();
        assert_eq!(seq.next_channel().index(), (30 + 16) % 37);
    }

    #[test]
    fn full_cycle_covers_all_37_channels() {
        // The property BLoc's 80 MHz stitching rests on (paper §5.1).
        for h in 5..=16 {
            assert_eq!(coverage(hop(h)), 37, "hop {h} must cover all data channels");
        }
    }

    #[test]
    fn remapping_respects_blacklist() {
        let map = ChannelMap::subsampled(2, 0).unwrap(); // even channels only
        let mut seq = HopSequence::new(hop(7), map, 0).unwrap();
        for _ in 0..200 {
            let c = seq.next_channel();
            assert!(map.contains(c), "scheduled blacklisted channel {c:?}");
        }
    }

    #[test]
    fn peek_schedule_is_pure() {
        let seq = HopSequence::new(hop(9), ChannelMap::all(), 3).unwrap();
        let a = seq.peek_schedule(10);
        let b = seq.peek_schedule(10);
        assert_eq!(a, b);
        assert_eq!(
            seq.event_counter, 0,
            "peeking must not advance the event counter"
        );
    }

    #[test]
    fn event_counter_advances() {
        let mut seq = HopSequence::new(hop(5), ChannelMap::all(), 0).unwrap();
        for k in 1..=5 {
            seq.next_channel();
            assert_eq!(seq.event_counter, k);
        }
    }

    #[test]
    fn channel_map_update_takes_effect() {
        let mut seq = HopSequence::new(hop(5), ChannelMap::all(), 0).unwrap();
        seq.next_channel();
        let restricted = ChannelMap::from_channels(&[1, 2, 3]).unwrap();
        seq.set_channel_map(restricted);
        for _ in 0..50 {
            assert!(restricted.contains(seq.next_channel()));
        }
    }

    #[test]
    fn invalid_start_channel_rejected() {
        assert!(HopSequence::new(hop(5), ChannelMap::all(), 37).is_err());
    }

    #[test]
    fn closed_form_matches_replay() {
        let map = ChannelMap::subsampled(2, 1).unwrap();
        let mut seq = HopSequence::new(hop(11), map, 7).unwrap();
        let reference = seq.clone();
        for event in 1..=200u64 {
            let stepped = seq.next_channel();
            assert_eq!(
                reference.channel_at(event),
                stepped,
                "closed form diverges at event {event}"
            );
            assert_eq!(reference.unmapped_at(event), seq.last_unmapped);
        }
    }

    #[test]
    fn resync_recovers_a_desynced_counter() {
        let mut truth = HopSequence::new(hop(9), ChannelMap::all(), 12).unwrap();
        for _ in 0..50 {
            truth.next_channel();
        }
        // A follower that missed 50 events re-derives the state from the
        // shared event counter instead of replaying or aborting.
        let mut follower = HopSequence::new(hop(9), ChannelMap::all(), 12).unwrap();
        follower.resync(truth.event_counter);
        assert_eq!(follower, truth);
        assert_eq!(follower.next_channel(), truth.next_channel());
    }

    #[test]
    fn first_unmapped_inverts_any_number_of_events() {
        let mut seq = HopSequence::new(hop(13), ChannelMap::all(), 29).unwrap();
        assert_eq!(seq.first_unmapped(), 29);
        for _ in 0..123 {
            seq.next_channel();
        }
        assert_eq!(seq.first_unmapped(), 29);
    }

    #[test]
    fn access_address_seeds_a_shared_start() {
        let aa = AccessAddress::new_data(0x8E89_BED7 ^ 0x5A5A_5A5A).unwrap();
        let a = HopSequence::for_connection(hop(7), ChannelMap::all(), aa);
        let b = HopSequence::for_connection(hop(7), ChannelMap::all(), aa);
        assert_eq!(a, b, "both link ends derive the same schedule");
        assert_eq!(a.first_unmapped() as u32, aa.value() % 37);
    }

    proptest! {
        #[test]
        fn prop_full_coverage_within_37_events(h in 5u8..=16, start in 0u8..37) {
            let mut seq = HopSequence::new(hop(h), ChannelMap::all(), start).unwrap();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..37 {
                seen.insert(seq.next_channel().index());
            }
            prop_assert_eq!(seen.len(), 37);
        }

        #[test]
        fn prop_schedule_deterministic(h in 5u8..=16, start in 0u8..37, n in 1usize..100) {
            let seq = HopSequence::new(hop(h), ChannelMap::all(), start).unwrap();
            prop_assert_eq!(seq.peek_schedule(n), seq.clone().peek_schedule(n));
        }
    }
}
