//! Error type for link-layer operations.

use std::fmt;

/// Errors produced while encoding, decoding or driving the BLE link layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BleError {
    /// A channel index outside the valid 0..=39 range.
    InvalidChannel(u8),
    /// A hop increment outside the spec's 5..=16 range.
    InvalidHop(u8),
    /// A received frame failed its CRC check.
    CrcMismatch {
        /// CRC carried in the frame.
        received: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// A frame or PDU was shorter than its header claims.
    Truncated {
        /// Bytes (or bits) expected.
        expected: usize,
        /// Bytes (or bits) available.
        actual: usize,
    },
    /// A payload exceeding the PDU length field's capacity.
    PayloadTooLong(usize),
    /// An access address violating the BLE validity rules.
    InvalidAccessAddress(u32),
    /// A PDU type code not defined by the spec subset we implement.
    UnknownPduType(u8),
    /// The frame's preamble did not match the access address polarity.
    BadPreamble,
    /// A link-layer operation attempted in the wrong connection state.
    InvalidState(&'static str),
    /// A channel map with fewer than 2 used channels (spec minimum).
    EmptyChannelMap,
}

impl fmt::Display for BleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidChannel(c) => write!(f, "invalid BLE channel index {c} (must be 0..=39)"),
            Self::InvalidHop(h) => write!(f, "invalid hop increment {h} (must be 5..=16)"),
            Self::CrcMismatch { received, computed } => {
                write!(
                    f,
                    "CRC mismatch: frame carries {received:#08x}, computed {computed:#08x}"
                )
            }
            Self::Truncated { expected, actual } => {
                write!(f, "truncated frame: expected {expected}, got {actual}")
            }
            Self::PayloadTooLong(n) => write!(f, "payload of {n} bytes exceeds PDU capacity"),
            Self::InvalidAccessAddress(aa) => write!(f, "invalid access address {aa:#010x}"),
            Self::UnknownPduType(t) => write!(f, "unknown PDU type {t:#x}"),
            Self::BadPreamble => write!(f, "preamble does not alternate from access address LSB"),
            Self::InvalidState(op) => write!(f, "operation `{op}` invalid in current link state"),
            Self::EmptyChannelMap => write!(f, "channel map must enable at least 2 data channels"),
        }
    }
}

impl std::error::Error for BleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BleError::CrcMismatch {
            received: 0xABCDEF,
            computed: 0x123456,
        };
        let s = e.to_string();
        assert!(s.contains("abcdef") && s.contains("123456"), "{s}");
        assert!(BleError::InvalidChannel(41).to_string().contains("41"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&BleError::BadPreamble);
    }
}
