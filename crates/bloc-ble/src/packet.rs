//! Whole air-interface frames: preamble · access address · whitened
//! (PDU ‖ CRC) — and their on-air bit representation.
//!
//! The GFSK PHY (the `bloc-phy` crate) modulates exactly the bit vector produced
//! here, so this module is the boundary between the link layer and the
//! radio. Bits go on air LSB-first within each byte, per the BLE spec.

use crate::access_address::AccessAddress;
use crate::channels::Channel;
use crate::crc::{crc24, crc_from_bytes, crc_to_bytes};
use crate::error::BleError;
use crate::whitening::Whitener;

/// A fully-framed BLE packet ready for modulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Frame {
    /// Sync word of the frame.
    pub access_address: AccessAddress,
    /// Unwhitened PDU bytes (header + payload).
    pub pdu: Vec<u8>,
    /// CRC init used for this frame (advertising or connection CRCInit).
    pub crc_init: u32,
}

impl Frame {
    /// Builds a frame; the CRC is computed at encode time.
    pub fn new(access_address: AccessAddress, pdu: Vec<u8>, crc_init: u32) -> Self {
        Self {
            access_address,
            pdu,
            crc_init,
        }
    }

    /// Serializes to on-air bytes for transmission on `channel`:
    /// preamble, access address, whitened PDU, whitened CRC.
    pub fn encode(&self, channel: Channel) -> Vec<u8> {
        let crc = crc24(self.crc_init, &self.pdu);
        let mut scrambled = self.pdu.clone();
        scrambled.extend_from_slice(&crc_to_bytes(crc));
        Whitener::new(channel).process(&mut scrambled);

        let mut out = Vec::with_capacity(5 + scrambled.len());
        out.push(self.access_address.preamble());
        out.extend_from_slice(&self.access_address.to_bytes());
        out.extend_from_slice(&scrambled);
        out
    }

    /// Serializes to the on-air bit sequence (LSB-first per byte) — the
    /// input of the GFSK modulator.
    pub fn encode_bits(&self, channel: Channel) -> Vec<bool> {
        bytes_to_bits(&self.encode(channel))
    }

    /// Parses on-air bytes received on `channel`, validating preamble and
    /// CRC. The expected access address must be known (BLE receivers
    /// correlate against it; BLoc anchors overhear using the address from
    /// the observed `CONNECT_IND`).
    pub fn decode(bytes: &[u8], channel: Channel, crc_init: u32) -> Result<Self, BleError> {
        if bytes.len() < 5 + 2 + 3 {
            return Err(BleError::Truncated {
                expected: 10,
                actual: bytes.len(),
            });
        }
        let aa = AccessAddress::from_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
        if bytes[0] != aa.preamble() {
            return Err(BleError::BadPreamble);
        }
        let mut scrambled = bytes[5..].to_vec();
        Whitener::new(channel).process(&mut scrambled);
        // PDU length is in the (now clear) second header byte.
        let pdu_len = 2 + scrambled[1] as usize;
        if scrambled.len() < pdu_len + 3 {
            return Err(BleError::Truncated {
                expected: 5 + pdu_len + 3,
                actual: bytes.len(),
            });
        }
        let pdu = scrambled[..pdu_len].to_vec();
        let rx_crc = crc_from_bytes([
            scrambled[pdu_len],
            scrambled[pdu_len + 1],
            scrambled[pdu_len + 2],
        ]);
        let computed = crc24(crc_init, &pdu);
        if rx_crc != computed {
            return Err(BleError::CrcMismatch {
                received: rx_crc,
                computed,
            });
        }
        Ok(Self {
            access_address: aa,
            pdu,
            crc_init,
        })
    }

    /// Parses an on-air bit sequence (inverse of [`Self::encode_bits`]).
    pub fn decode_bits(bits: &[bool], channel: Channel, crc_init: u32) -> Result<Self, BleError> {
        Self::decode(&bits_to_bytes(bits), channel, crc_init)
    }

    /// The number of on-air bits this frame occupies.
    pub fn air_bits(&self) -> usize {
        (1 + 4 + self.pdu.len() + 3) * 8
    }
}

/// Expands bytes to bits, LSB-first within each byte (on-air order).
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in 0..8 {
            bits.push((b >> i) & 1 == 1);
        }
    }
    bits
}

/// Packs bits (LSB-first per byte) back into bytes; trailing bits that do
/// not fill a byte are dropped.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    bits.chunks_exact(8)
        .map(|chunk| {
            chunk
                .iter()
                .enumerate()
                .fold(0u8, |b, (i, &bit)| b | (u8::from(bit)) << i)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdu::{DataPdu, Llid};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn test_frame(payload: Vec<u8>) -> Frame {
        let mut rng = StdRng::seed_from_u64(11);
        let aa = AccessAddress::generate(&mut rng);
        let pdu = DataPdu {
            llid: Llid::DataStart,
            nesn: false,
            sn: false,
            md: false,
            payload,
        }
        .encode()
        .unwrap();
        Frame::new(aa, pdu, 0x55AA55)
    }

    fn ch(i: u8) -> Channel {
        Channel::new(i).unwrap()
    }

    #[test]
    fn frame_roundtrip() {
        let f = test_frame(vec![1, 2, 3, 4, 5]);
        let bytes = f.encode(ch(17));
        let back = Frame::decode(&bytes, ch(17), 0x55AA55).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn bit_roundtrip() {
        let f = test_frame(b"localization".to_vec());
        let bits = f.encode_bits(ch(3));
        assert_eq!(bits.len(), f.air_bits());
        let back = Frame::decode_bits(&bits, ch(3), 0x55AA55).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn wrong_channel_dewhitening_fails_crc() {
        let f = test_frame(vec![9; 20]);
        let bytes = f.encode(ch(5));
        let err = Frame::decode(&bytes, ch(6), 0x55AA55).unwrap_err();
        // De-whitening with the wrong seed garbles everything; the usual
        // symptom is a CRC mismatch (or an implausible length → truncated).
        assert!(
            matches!(
                err,
                BleError::CrcMismatch { .. } | BleError::Truncated { .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn corrupted_bit_fails_crc() {
        let f = test_frame(vec![0xAB; 8]);
        let mut bytes = f.encode(ch(0));
        bytes[9] ^= 0x10; // flip a payload bit
        assert!(matches!(
            Frame::decode(&bytes, ch(0), 0x55AA55),
            Err(BleError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn wrong_crc_init_fails() {
        let f = test_frame(vec![1, 2, 3]);
        let bytes = f.encode(ch(0));
        assert!(matches!(
            Frame::decode(&bytes, ch(0), 0x000001),
            Err(BleError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn bad_preamble_detected() {
        let f = test_frame(vec![7; 4]);
        let mut bytes = f.encode(ch(2));
        bytes[0] ^= 0xFF;
        assert_eq!(
            Frame::decode(&bytes, ch(2), 0x55AA55),
            Err(BleError::BadPreamble)
        );
    }

    #[test]
    fn short_input_truncated() {
        assert!(matches!(
            Frame::decode(&[0xAA, 1, 2], ch(0), 0),
            Err(BleError::Truncated { .. })
        ));
    }

    #[test]
    fn bits_bytes_helpers() {
        let bytes = vec![0b1010_0001, 0xFF, 0x00];
        let bits = bytes_to_bits(&bytes);
        assert_eq!(bits.len(), 24);
        assert!(bits[0]); // LSB of 0xA1 is 1
        assert!(!bits[1]);
        assert_eq!(bits_to_bytes(&bits), bytes);
    }

    proptest! {
        #[test]
        fn prop_frame_roundtrip_any_channel(payload in proptest::collection::vec(any::<u8>(), 0..100),
                                            chan in 0u8..40) {
            let f = test_frame(payload);
            let bits = f.encode_bits(ch(chan));
            let back = Frame::decode_bits(&bits, ch(chan), 0x55AA55).unwrap();
            prop_assert_eq!(back, f);
        }

        #[test]
        fn prop_bits_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
        }
    }
}
