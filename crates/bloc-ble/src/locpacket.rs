//! BLoc's localization packets: payloads whose **on-air** bits are long runs
//! of 0s followed by long runs of 1s (paper §4).
//!
//! "We construct BLE data packets with long sequences of bit 0 followed by
//! long sequences of bit 1. Because we send long sequences of bit 0, the
//! frequency value settles at f₀ and we can then measure the wireless
//! channel at f₀." — paper §4.
//!
//! There is a subtlety the paper glosses over: data-channel PDUs are
//! **whitened** on air ([`crate::whitening`]), so a payload of literal
//! `0x00`/`0xFF` bytes would be scrambled and the runs destroyed. The
//! payload must be *pre-whitened*: since whitening is an XOR stream, handing
//! the link layer `desired ⊕ stream` makes the transmitted bits equal
//! `desired`. This module does that bookkeeping, and also reports where the
//! stable (frequency-settled) CSI measurement windows fall inside the
//! packet, accounting for the Gaussian filter's settling time.

use crate::access_address::AccessAddress;
use crate::channels::Channel;
use crate::error::BleError;
use crate::packet::Frame;
use crate::pdu::{DataPdu, Llid};
use crate::whitening::whitening_stream;

/// Default run length in bits. The paper's throughput discussion (§6) needs
/// 8 µs per tone ⇒ 8 bits at 1 Mb/s; Fig. 4(b) illustrates with 5-bit runs.
pub const DEFAULT_RUN_BITS: usize = 8;

/// How many bits at each end of a run are discarded while the Gaussian
/// filter settles (the filter spans ±1–2 symbols; see `bloc-phy::pulse`).
pub const SETTLE_BITS: usize = 2;

/// A contiguous run of equal bits inside the payload, in payload-bit
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Run {
    /// First payload bit of the run.
    pub start: usize,
    /// Run length in bits.
    pub len: usize,
    /// The repeated bit value (false ⇒ tone at f₀, true ⇒ tone at f₁).
    pub bit: bool,
}

impl Run {
    /// The sub-range of this run usable for CSI measurement after
    /// discarding `settle` bits at each end; `None` if nothing remains.
    pub fn stable_window(&self, settle: usize) -> Option<(usize, usize)> {
        if self.len <= 2 * settle {
            return None;
        }
        Some((self.start + settle, self.len - 2 * settle))
    }
}

/// The desired on-air payload bit pattern: `pairs` repetitions of
/// (`run_bits` zeros, `run_bits` ones).
pub fn run_pattern(run_bits: usize, pairs: usize) -> Vec<bool> {
    let mut bits = Vec::with_capacity(run_bits * 2 * pairs);
    for _ in 0..pairs {
        bits.extend(std::iter::repeat(false).take(run_bits));
        bits.extend(std::iter::repeat(true).take(run_bits));
    }
    bits
}

/// Finds all runs of at least `min_run` equal bits in a bit sequence.
pub fn find_runs(bits: &[bool], min_run: usize) -> Vec<Run> {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < bits.len() {
        let bit = bits[i];
        let start = i;
        while i < bits.len() && bits[i] == bit {
            i += 1;
        }
        let len = i - start;
        if len >= min_run {
            runs.push(Run { start, len, bit });
        }
    }
    runs
}

/// A localization packet: the frame plus the metadata the CSI extractor
/// needs (where the stable tone windows are, in on-air bit coordinates).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LocalizationPacket {
    /// The fully-framed packet (pre-whitened payload already applied).
    pub frame: Frame,
    /// The channel the frame was built for (pre-whitening is
    /// channel-specific!).
    pub channel: Channel,
    /// Desired on-air payload bits (the run pattern).
    pub on_air_payload: Vec<bool>,
    /// Runs within [`Self::on_air_payload`] (payload-bit coordinates).
    pub runs: Vec<Run>,
}

/// On-air bit offset of the PDU payload: preamble (8) + access address (32)
/// + data PDU header (16).
pub const PAYLOAD_BIT_OFFSET: usize = 8 + 32 + 16;

/// Whitening-stream bit offset of the PDU payload (whitening starts at the
/// PDU header).
const PAYLOAD_WHITENING_OFFSET: usize = 16;

impl LocalizationPacket {
    /// Builds a localization packet for `channel` whose on-air payload is
    /// `pairs` × (`run_bits` zeros then `run_bits` ones).
    ///
    /// The payload length must be whole bytes: `run_bits · pairs · 2 ≡ 0
    /// (mod 8)`; errors with [`BleError::PayloadTooLong`] when the pattern
    /// exceeds the 255-byte PDU payload capacity.
    pub fn build(
        channel: Channel,
        access_address: AccessAddress,
        crc_init: u32,
        run_bits: usize,
        pairs: usize,
    ) -> Result<Self, BleError> {
        let desired = run_pattern(run_bits, pairs);
        assert!(
            desired.len() % 8 == 0,
            "run pattern must fill whole bytes (got {} bits)",
            desired.len()
        );
        let n_bytes = desired.len() / 8;
        if n_bytes > 255 {
            return Err(BleError::PayloadTooLong(n_bytes));
        }

        // Pre-whiten: payload = desired ⊕ whitening-stream (offset past the
        // 2 header bytes the whitener consumes first).
        let stream = whitening_stream(channel, PAYLOAD_WHITENING_OFFSET + desired.len());
        let payload_bits: Vec<bool> = desired
            .iter()
            .enumerate()
            .map(|(i, &d)| d ^ stream[PAYLOAD_WHITENING_OFFSET + i])
            .collect();
        let payload = crate::packet::bits_to_bytes(&payload_bits);

        let pdu = DataPdu {
            llid: Llid::DataStart,
            nesn: false,
            sn: false,
            md: false,
            payload,
        }
        .encode()?;
        let frame = Frame::new(access_address, pdu, crc_init);
        let runs = find_runs(&desired, run_bits.min(2));
        Ok(Self {
            frame,
            channel,
            on_air_payload: desired,
            runs,
        })
    }

    /// The on-air bit sequence of the whole frame (what the modulator
    /// transmits). The payload region, bits
    /// `PAYLOAD_BIT_OFFSET .. PAYLOAD_BIT_OFFSET + on_air_payload.len()`,
    /// carries the run pattern verbatim.
    pub fn air_bits(&self) -> Vec<bool> {
        self.frame.encode_bits(self.channel)
    }

    /// Stable CSI windows in **on-air bit** coordinates: for each run, the
    /// window after discarding [`SETTLE_BITS`] at each end, tagged with the
    /// tone (false ⇒ f₀, true ⇒ f₁).
    pub fn stable_windows(&self, settle: usize) -> Vec<(usize, usize, bool)> {
        self.runs
            .iter()
            .filter_map(|r| {
                r.stable_window(settle)
                    .map(|(start, len)| (PAYLOAD_BIT_OFFSET + start, len, r.bit))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn aa() -> AccessAddress {
        let mut rng = StdRng::seed_from_u64(21);
        AccessAddress::generate(&mut rng)
    }

    fn ch(i: u8) -> Channel {
        Channel::new(i).unwrap()
    }

    #[test]
    fn pattern_shape() {
        let p = run_pattern(8, 2);
        assert_eq!(p.len(), 32);
        assert!(p[..8].iter().all(|&b| !b));
        assert!(p[8..16].iter().all(|&b| b));
        assert!(p[16..24].iter().all(|&b| !b));
    }

    #[test]
    fn find_runs_basic() {
        let bits = [false, false, false, true, true, false];
        let runs = find_runs(&bits, 2);
        assert_eq!(
            runs,
            vec![
                Run {
                    start: 0,
                    len: 3,
                    bit: false
                },
                Run {
                    start: 3,
                    len: 2,
                    bit: true
                }
            ]
        );
    }

    #[test]
    fn on_air_bits_contain_the_runs() {
        // The whole point: after framing AND whitening, the payload region
        // of the transmitted bits is the clean run pattern.
        for chan in [0u8, 11, 23, 36] {
            let lp = LocalizationPacket::build(ch(chan), aa(), 0x123456, 8, 4).unwrap();
            let air = lp.air_bits();
            let region = &air[PAYLOAD_BIT_OFFSET..PAYLOAD_BIT_OFFSET + lp.on_air_payload.len()];
            assert_eq!(region, &lp.on_air_payload[..], "channel {chan}");
        }
    }

    #[test]
    fn frame_still_decodes_as_valid_ble() {
        // Pre-whitening must not break protocol compliance: a standard
        // receiver de-whitens and checks CRC as usual.
        let lp = LocalizationPacket::build(ch(7), aa(), 0xABCDEF, 8, 8).unwrap();
        let bits = lp.air_bits();
        let frame = Frame::decode_bits(&bits, ch(7), 0xABCDEF).unwrap();
        assert_eq!(frame, lp.frame);
    }

    #[test]
    fn prewhitening_is_channel_specific() {
        let a = LocalizationPacket::build(ch(1), aa(), 0, 8, 2).unwrap();
        let b = LocalizationPacket::build(ch(2), aa(), 0, 8, 2).unwrap();
        assert_ne!(
            a.frame.pdu, b.frame.pdu,
            "payload bytes must differ across channels"
        );
        assert_eq!(
            a.on_air_payload, b.on_air_payload,
            "on-air pattern must not"
        );
    }

    #[test]
    fn stable_windows_discard_settling() {
        let lp = LocalizationPacket::build(ch(0), aa(), 0, 8, 2).unwrap();
        let wins = lp.stable_windows(2);
        assert_eq!(wins.len(), 4); // 2 pairs = 4 runs
        for (start, len, _) in &wins {
            assert_eq!(*len, 8 - 2 * 2);
            assert!(*start >= PAYLOAD_BIT_OFFSET + 2);
        }
        // Alternating tones, zeros first.
        assert!(!wins[0].2 && wins[1].2 && !wins[2].2 && wins[3].2);
    }

    #[test]
    fn run_too_short_for_window() {
        let r = Run {
            start: 0,
            len: 4,
            bit: false,
        };
        assert_eq!(r.stable_window(2), None);
        assert_eq!(r.stable_window(1), Some((1, 2)));
    }

    #[test]
    fn oversized_pattern_rejected() {
        // 256 bytes of pattern exceeds the PDU payload field.
        assert!(matches!(
            LocalizationPacket::build(ch(0), aa(), 0, 8, 128),
            Err(BleError::PayloadTooLong(_))
        ));
    }

    proptest! {
        #[test]
        fn prop_runs_partition_pattern(run_bits in 1usize..16, pairs in 1usize..8) {
            prop_assume!((run_bits * pairs * 2) % 8 == 0);
            let p = run_pattern(run_bits, pairs);
            let runs = find_runs(&p, 1);
            let total: usize = runs.iter().map(|r| r.len).sum();
            prop_assert_eq!(total, p.len());
            prop_assert_eq!(runs.len(), 2 * pairs);
        }

        #[test]
        fn prop_air_payload_matches_any_channel(chan in 0u8..37, pairs in 1usize..12) {
            let lp = LocalizationPacket::build(ch(chan), aa(), 0x555555, 8, pairs).unwrap();
            let air = lp.air_bits();
            let region = &air[PAYLOAD_BIT_OFFSET..PAYLOAD_BIT_OFFSET + lp.on_air_payload.len()];
            prop_assert_eq!(region, &lp.on_air_payload[..]);
        }
    }
}
