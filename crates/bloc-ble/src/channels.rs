//! The BLE channel map: 40 channels, 2 MHz wide, over 2400–2480 MHz.
//!
//! Paper Fig. 1(a): "BLE uses 40 frequency bands, 2 MHz wide each, spread
//! over the 2.4 GHz ISM band. Of the 40 bands, 3 are designated
//! advertisement bands and the other 37 are data communication bands."
//!
//! Two numbering schemes coexist in BLE and both matter here:
//!
//! * the **link-layer index** (what `CONNECT_IND`, hopping and whitening
//!   use): data channels 0–36, advertising channels 37/38/39;
//! * the **frequency index** `k` (paper's "subband"): position of the 2 MHz
//!   band within the 80 MHz span, `f = 2402 + 2k MHz`, `k ∈ 0..=39`.
//!
//! Advertising channels sit at frequency indices 0 (2402), 12 (2426) and
//! 39 (2480) — spread across the band to dodge Wi-Fi, which is why data
//! channel *n* maps to frequency index `n+1` for n ≤ 10 and `n+2` for
//! n ≥ 11.

use crate::error::BleError;
use bloc_num::constants::{BLE_CHANNEL_WIDTH_HZ, BLE_NUM_CHANNELS, BLE_NUM_DATA_CHANNELS};

/// A BLE channel, identified by its link-layer index (0..=39).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Channel(u8);

impl Channel {
    /// The three advertising channels.
    pub const ADV: [Channel; 3] = [Channel(37), Channel(38), Channel(39)];

    /// Builds a channel from a link-layer index, validating range.
    pub fn new(index: u8) -> Result<Self, BleError> {
        if (index as usize) < BLE_NUM_CHANNELS {
            Ok(Self(index))
        } else {
            Err(BleError::InvalidChannel(index))
        }
    }

    /// Builds a data channel (0..=36), validating range.
    pub fn data(index: u8) -> Result<Self, BleError> {
        if (index as usize) < BLE_NUM_DATA_CHANNELS {
            Ok(Self(index))
        } else {
            Err(BleError::InvalidChannel(index))
        }
    }

    /// Link-layer index (0..=39).
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }

    /// True for the three advertising channels 37..=39.
    #[inline]
    pub fn is_advertising(self) -> bool {
        self.0 >= 37
    }

    /// True for data channels 0..=36.
    #[inline]
    pub fn is_data(self) -> bool {
        !self.is_advertising()
    }

    /// Frequency index `k` of this channel: the position of its 2 MHz band
    /// in the 80 MHz span, `f_center = 2402 MHz + 2k MHz` (the paper's
    /// "subband" number in Figs. 8a/8b).
    pub fn freq_index(self) -> usize {
        match self.0 {
            37 => 0,                      // 2402 MHz
            38 => 12,                     // 2426 MHz
            39 => 39,                     // 2480 MHz
            n @ 0..=10 => n as usize + 1, // 2404..=2424 MHz
            n => n as usize + 2,          // 11..=36 → 2428..=2478 MHz
        }
    }

    /// Inverse of [`Self::freq_index`].
    pub fn from_freq_index(k: usize) -> Result<Self, BleError> {
        let ll = match k {
            0 => 37,
            12 => 38,
            39 => 39,
            1..=11 => k as u8 - 1,
            13..=38 => k as u8 - 2,
            _ => return Err(BleError::InvalidChannel(k.min(255) as u8)),
        };
        Ok(Self(ll))
    }

    /// Centre frequency of the channel, hertz.
    #[inline]
    pub fn freq_hz(self) -> f64 {
        2.402e9 + self.freq_index() as f64 * BLE_CHANNEL_WIDTH_HZ
    }

    /// All 37 data channels in link-layer order.
    pub fn all_data() -> impl Iterator<Item = Channel> {
        (0..BLE_NUM_DATA_CHANNELS as u8).map(Channel)
    }

    /// All 40 channels in link-layer order.
    pub fn all() -> impl Iterator<Item = Channel> {
        (0..BLE_NUM_CHANNELS as u8).map(Channel)
    }
}

/// The set of data channels a connection may use — BLE's adaptive frequency
/// hopping blacklist, as exercised by the paper's interference-avoidance
/// experiment (§8.6: "BLE can sometimes blacklist certain channels").
///
/// Stored as a 37-bit mask over link-layer data channel indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChannelMap {
    mask: u64,
}

impl ChannelMap {
    /// All 37 data channels enabled.
    pub fn all() -> Self {
        Self {
            mask: (1u64 << BLE_NUM_DATA_CHANNELS) - 1,
        }
    }

    /// A map from an explicit list of enabled data channels.
    ///
    /// Errors with [`BleError::EmptyChannelMap`] when fewer than 2 channels
    /// are enabled (the spec minimum) and with [`BleError::InvalidChannel`]
    /// for indices ≥ 37.
    pub fn from_channels(channels: &[u8]) -> Result<Self, BleError> {
        let mut mask = 0u64;
        for &c in channels {
            if c as usize >= BLE_NUM_DATA_CHANNELS {
                return Err(BleError::InvalidChannel(c));
            }
            mask |= 1 << c;
        }
        let map = Self { mask };
        if map.count() < 2 {
            return Err(BleError::EmptyChannelMap);
        }
        Ok(map)
    }

    /// Keeps every `stride`-th data channel starting at `offset` — the
    /// subsampling pattern of the paper's Fig. 11 experiment.
    pub fn subsampled(stride: usize, offset: usize) -> Result<Self, BleError> {
        let chans: Vec<u8> = (0..BLE_NUM_DATA_CHANNELS)
            .filter(|c| c % stride == offset % stride)
            .map(|c| c as u8)
            .collect();
        Self::from_channels(&chans)
    }

    /// True when data channel `c` is enabled.
    #[inline]
    pub fn contains(self, c: Channel) -> bool {
        c.is_data() && (self.mask >> c.index()) & 1 == 1
    }

    /// Number of enabled channels.
    #[inline]
    pub fn count(self) -> u32 {
        self.mask.count_ones()
    }

    /// Enabled channels in ascending link-layer order — the remap table of
    /// channel-selection algorithm #1.
    pub fn used_channels(self) -> Vec<Channel> {
        Channel::all_data().filter(|c| self.contains(*c)).collect()
    }

    /// Disables a channel. Errors if that would leave fewer than 2 enabled.
    pub fn blacklist(&mut self, c: Channel) -> Result<(), BleError> {
        if !c.is_data() {
            return Err(BleError::InvalidChannel(c.index()));
        }
        let next = self.mask & !(1 << c.index());
        if next.count_ones() < 2 {
            return Err(BleError::EmptyChannelMap);
        }
        self.mask = next;
        Ok(())
    }

    /// Raw 37-bit mask (bit *i* = data channel *i* enabled).
    pub fn mask(self) -> u64 {
        self.mask
    }
}

impl Default for ChannelMap {
    fn default() -> Self {
        Self::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn advertising_channel_frequencies() {
        // The spec pins these: 37→2402, 38→2426, 39→2480 MHz.
        assert_eq!(Channel::new(37).unwrap().freq_hz(), 2.402e9);
        assert_eq!(Channel::new(38).unwrap().freq_hz(), 2.426e9);
        assert_eq!(Channel::new(39).unwrap().freq_hz(), 2.480e9);
    }

    #[test]
    fn data_channel_frequencies_straddle_adv() {
        assert_eq!(Channel::data(0).unwrap().freq_hz(), 2.404e9);
        assert_eq!(Channel::data(10).unwrap().freq_hz(), 2.424e9);
        assert_eq!(Channel::data(11).unwrap().freq_hz(), 2.428e9);
        assert_eq!(Channel::data(36).unwrap().freq_hz(), 2.478e9);
    }

    #[test]
    fn freq_index_is_bijective() {
        let mut seen = [false; 40];
        for c in Channel::all() {
            let k = c.freq_index();
            assert!(!seen[k], "freq index {k} claimed twice");
            seen[k] = true;
            assert_eq!(Channel::from_freq_index(k).unwrap(), c);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn invalid_indices_rejected() {
        assert!(Channel::new(40).is_err());
        assert!(Channel::data(37).is_err());
        assert!(Channel::from_freq_index(40).is_err());
    }

    #[test]
    fn full_map_has_37_channels() {
        let m = ChannelMap::all();
        assert_eq!(m.count(), 37);
        assert_eq!(m.used_channels().len(), 37);
    }

    #[test]
    fn subsampling_patterns() {
        // Fig. 11: every 2nd channel → 19 of 37, every 4th → 10 of 37.
        assert_eq!(ChannelMap::subsampled(2, 0).unwrap().count(), 19);
        assert_eq!(ChannelMap::subsampled(4, 0).unwrap().count(), 10);
    }

    #[test]
    fn blacklist_enforces_minimum() {
        let mut m = ChannelMap::from_channels(&[0, 1, 2]).unwrap();
        m.blacklist(Channel::data(0).unwrap()).unwrap();
        assert_eq!(m.count(), 2);
        let e = m.blacklist(Channel::data(1).unwrap());
        assert_eq!(e, Err(BleError::EmptyChannelMap));
    }

    #[test]
    fn blacklist_rejects_adv_channel() {
        let mut m = ChannelMap::all();
        assert!(m.blacklist(Channel::new(38).unwrap()).is_err());
    }

    #[test]
    fn map_minimum_size_enforced() {
        assert_eq!(
            ChannelMap::from_channels(&[5]),
            Err(BleError::EmptyChannelMap)
        );
        assert!(ChannelMap::from_channels(&[5, 6]).is_ok());
    }

    proptest! {
        #[test]
        fn prop_channel_freq_in_ism_band(idx in 0u8..40) {
            let f = Channel::new(idx).unwrap().freq_hz();
            prop_assert!((2.402e9..=2.480e9).contains(&f));
            // Channel grid: 2 MHz raster anchored at 2402.
            prop_assert_eq!(((f - 2.402e9) / 2.0e6).fract(), 0.0);
        }

        #[test]
        fn prop_used_channels_sorted_and_contained(mask_bits in proptest::collection::vec(0u8..37, 2..37)) {
            if let Ok(m) = ChannelMap::from_channels(&mask_bits) {
                let used = m.used_channels();
                prop_assert!(used.windows(2).all(|w| w[0] < w[1]));
                for c in used {
                    prop_assert!(m.contains(c));
                }
            }
        }
    }
}
