//! The BLE link-layer CRC-24.
//!
//! Polynomial `x²⁴ + x¹⁰ + x⁹ + x⁶ + x⁴ + x³ + x + 1` (0x00065B), computed
//! over the PDU with bits fed LSB-first as they go on air. Advertising
//! channel PDUs use the fixed init 0x555555; data channel PDUs use the
//! CRCInit exchanged in `CONNECT_IND` — both paths are exercised by the
//! framing layer.

/// The BLE CRC-24 polynomial (without the x²⁴ term).
pub const POLY: u32 = 0x00065B;

/// CRC init value for advertising channel PDUs.
pub const ADV_CRC_INIT: u32 = 0x555555;

/// Computes the CRC-24 of `data` starting from `init` (24 significant
/// bits). Bits of each byte are processed LSB-first, matching the
/// transmission order.
pub fn crc24(init: u32, data: &[u8]) -> u32 {
    let mut state = init & 0xFF_FFFF;
    for &byte in data {
        for j in 0..8 {
            let bit = (byte >> j) & 1;
            let msb = ((state >> 23) & 1) as u8;
            state = (state << 1) & 0xFF_FFFF;
            if bit ^ msb == 1 {
                state ^= POLY;
            }
        }
    }
    state
}

/// Serializes a CRC value into its 3 on-air bytes (least-significant byte
/// first, matching BLE's LSB-first transmission).
pub fn crc_to_bytes(crc: u32) -> [u8; 3] {
    [
        (crc & 0xFF) as u8,
        ((crc >> 8) & 0xFF) as u8,
        ((crc >> 16) & 0xFF) as u8,
    ]
}

/// Parses the 3 on-air CRC bytes back into a value.
pub fn crc_from_bytes(bytes: [u8; 3]) -> u32 {
    bytes[0] as u32 | (bytes[1] as u32) << 8 | (bytes[2] as u32) << 16
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_data_returns_init() {
        assert_eq!(crc24(ADV_CRC_INIT, &[]), ADV_CRC_INIT);
        assert_eq!(crc24(0x123456, &[]), 0x123456);
    }

    #[test]
    fn stays_within_24_bits() {
        let c = crc24(0xFF_FFFF, &[0xFF; 64]);
        assert_eq!(c & !0xFF_FFFF, 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"BLoc localization packet".to_vec();
        let base = crc24(ADV_CRC_INIT, &data);
        for i in 0..data.len() {
            for b in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << b;
                assert_ne!(
                    crc24(ADV_CRC_INIT, &corrupted),
                    base,
                    "flip at byte {i} bit {b}"
                );
            }
        }
    }

    #[test]
    fn detects_burst_errors_up_to_24_bits() {
        // A CRC-24 catches any burst shorter than 25 bits.
        let data = vec![0xA5u8; 32];
        let base = crc24(0x555555, &data);
        for start in [0usize, 40, 100] {
            for len in [2usize, 8, 17, 24] {
                let mut corrupted = data.clone();
                for bit in start..start + len {
                    corrupted[bit / 8] ^= 1 << (bit % 8);
                }
                assert_ne!(crc24(0x555555, &corrupted), base, "burst {len} @ {start}");
            }
        }
    }

    #[test]
    fn init_value_matters() {
        let data = [1, 2, 3];
        assert_ne!(crc24(ADV_CRC_INIT, &data), crc24(0x000001, &data));
    }

    #[test]
    fn byte_roundtrip() {
        for crc in [0u32, 0x000001, 0xABCDEF, 0xFF_FFFF] {
            assert_eq!(crc_from_bytes(crc_to_bytes(crc)), crc);
        }
    }

    #[test]
    fn distinguishes_near_collisions() {
        let v = crc24(ADV_CRC_INIT, b"hello");
        assert_ne!(v, crc24(ADV_CRC_INIT, b"hellp"));
        assert_ne!(v, crc24(ADV_CRC_INIT, b"hell"));
        assert_ne!(v, crc24(ADV_CRC_INIT, b"helloo"));
    }

    proptest! {
        #[test]
        fn prop_crc_is_deterministic(init in 0u32..0x1000000, data in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assert_eq!(crc24(init, &data), crc24(init, &data));
        }

        #[test]
        fn prop_extension_changes_crc(data in proptest::collection::vec(any::<u8>(), 1..32), extra in any::<u8>()) {
            // Appending a byte almost surely changes the CRC; specifically,
            // appending then recomputing from scratch must equal streaming.
            let mut ext = data.clone();
            ext.push(extra);
            let streamed = crc24(crc24(ADV_CRC_INIT, &data) , &[]);
            prop_assert_eq!(streamed, crc24(ADV_CRC_INIT, &data));
            // chaining property: crc(init, a ++ b) == crc(crc(init, a), b)
            let whole = crc24(ADV_CRC_INIT, &ext);
            let chained = crc24(crc24(ADV_CRC_INIT, &data), &[extra]);
            prop_assert_eq!(whole, chained);
        }
    }
}
