//! # bloc-ble — the BLE link-layer substrate of the BLoc workspace
//!
//! BLoc (paper §3, §6) is deliberately *protocol-compliant*: the tag is an
//! unmodified BLE device, the anchors speak standard BLE, and the only
//! unusual traffic is data packets whose payloads contain long runs of 0 and
//! 1 bits. Reproducing the system therefore requires a real link layer, not
//! a mock. This crate implements the parts of Bluetooth LE 4.x that BLoc
//! touches:
//!
//! * [`channels`] — the 40-channel map (37 data + 3 advertising) and the
//!   link-layer-index ↔ RF-frequency mapping (paper Fig. 1a).
//! * [`hopping`] — channel-selection algorithm #1,
//!   `ch_next = (ch_cur + hop) mod 37`, and the prime-37 full-coverage
//!   property BLoc's bandwidth stitching relies on (paper §2.1, §5.1).
//! * [`whitening`] — the 7-bit LFSR data whitener.
//! * [`crc`] — the 24-bit link-layer CRC.
//! * [`access_address`] — access-address validity rules and generation.
//! * [`pdu`] — advertising and data PDU encode/decode.
//! * [`packet`] — whole air-interface frames (preamble → CRC) to/from bits.
//! * [`link`] — a master/slave connection state machine producing the
//!   per-connection-event channel schedule BLoc sounds on.
//! * [`control`] — LL control procedures: instant-synchronized channel-map
//!   updates (the §8.6 blacklisting path) and termination.
//! * [`locpacket`] — BLoc's localization payloads: long 0-runs then long
//!   1-runs (paper §4), including pre-whitening compensation so the runs
//!   survive on air.
//! * [`beacon`] — advertising-data structures and the iBeacon/Eddystone
//!   payloads of the commercial tags BLoc targets (paper §1).
//!
//! Everything is synchronous, allocation-light, and deterministic — in the
//! spirit of `smoltcp`'s "simplicity and robustness" design goals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access_address;
pub mod beacon;
pub mod channels;
pub mod control;
pub mod crc;
pub mod error;
pub mod hopping;
pub mod link;
pub mod locpacket;
pub mod packet;
pub mod pdu;
pub mod whitening;

pub use channels::{Channel, ChannelMap};
pub use error::BleError;
pub use hopping::HopSequence;
