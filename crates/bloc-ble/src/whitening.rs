//! BLE data whitening: the 7-bit LFSR `x⁷ + x⁴ + 1`.
//!
//! Every BLE PDU+CRC is XOR-scrambled on air with a channel-seeded LFSR
//! stream. This matters doubly for BLoc: (a) a faithful air interface needs
//! it, and (b) BLoc's localization packets must contain long runs of 0s and
//! 1s *on air* (paper §4) — which means the payload handed to the link layer
//! must be **pre-whitened** so the scrambler's XOR cancels
//! ([`crate::locpacket`] does this using [`whitening_stream`]).
//!
//! The register is seeded with the link-layer channel index with bit 6
//! forced to 1 (so the seed is never all-zero). The implementation uses the
//! Galois (reflected) form common to open BLE stacks: output is register
//! bit 0; on a 1-output the register is XORed with `0x88` before the right
//! shift.

use crate::channels::Channel;

/// The whitening LFSR, usable as a streaming scrambler/descrambler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Whitener {
    lfsr: u8,
}

impl Whitener {
    /// Seeds the whitener for a channel (seed = `channel_index | 0x40`).
    pub fn new(channel: Channel) -> Self {
        Self {
            lfsr: channel.index() | 0x40,
        }
    }

    /// Produces the next whitening bit.
    #[inline]
    pub fn next_bit(&mut self) -> bool {
        let out = self.lfsr & 1 == 1;
        if out {
            self.lfsr ^= 0x88;
        }
        self.lfsr >>= 1;
        out
    }

    /// Whitens (or de-whitens — the operation is an involution) a byte,
    /// LSB-first as bits go on air.
    pub fn process_byte(&mut self, byte: u8) -> u8 {
        let mut out = byte;
        for i in 0..8 {
            if self.next_bit() {
                out ^= 1 << i;
            }
        }
        out
    }

    /// Whitens a byte slice in place.
    pub fn process(&mut self, data: &mut [u8]) {
        for b in data {
            *b = self.process_byte(*b);
        }
    }

    /// Skips `n` whitening bits (used when pre-whitening a payload that
    /// starts after the PDU header in the scrambled region).
    pub fn skip_bits(&mut self, n: usize) {
        for _ in 0..n {
            self.next_bit();
        }
    }
}

/// Convenience: returns a whitened copy of `data` for `channel`.
pub fn whiten(channel: Channel, data: &[u8]) -> Vec<u8> {
    let mut v = data.to_vec();
    Whitener::new(channel).process(&mut v);
    v
}

/// The first `n_bits` of the whitening stream for `channel`, as booleans in
/// on-air order. [`crate::locpacket`] XORs desired on-air bits with this to
/// compute the payload to transmit.
pub fn whitening_stream(channel: Channel, n_bits: usize) -> Vec<bool> {
    let mut w = Whitener::new(channel);
    (0..n_bits).map(|_| w.next_bit()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ch(i: u8) -> Channel {
        Channel::new(i).unwrap()
    }

    #[test]
    fn whitening_is_involution() {
        // De-whitening is the same operation: x ⊕ s ⊕ s = x.
        let data: Vec<u8> = (0u8..64).collect();
        for c in [0, 17, 36, 37, 39] {
            let once = whiten(ch(c), &data);
            let twice = whiten(ch(c), &once);
            assert_eq!(twice, data, "channel {c}");
        }
    }

    #[test]
    fn stream_differs_across_channels() {
        let a = whitening_stream(ch(0), 64);
        let b = whitening_stream(ch(1), 64);
        assert_ne!(a, b);
    }

    #[test]
    fn seed_is_never_degenerate() {
        // Bit 6 forced to 1 means channel 0 still scrambles.
        let s = whitening_stream(ch(0), 32);
        assert!(
            s.iter().any(|&b| b),
            "channel-0 stream must not be all zero"
        );
    }

    #[test]
    fn stream_has_lfsr_period_127() {
        // A maximal 7-bit LFSR repeats with period 2⁷−1 = 127.
        let s = whitening_stream(ch(22), 254);
        assert_eq!(&s[..127], &s[127..254]);
        // ...and not with any shorter period that divides nicely.
        assert_ne!(&s[..63], &s[63..126]);
    }

    #[test]
    fn skip_bits_matches_streaming() {
        let mut a = Whitener::new(ch(5));
        a.skip_bits(13);
        let mut b = Whitener::new(ch(5));
        for _ in 0..13 {
            b.next_bit();
        }
        assert_eq!(a, b);
    }

    #[test]
    fn process_byte_is_lsb_first() {
        // First stream bit must affect bit 0 of the first byte.
        let c = ch(9);
        let first = whitening_stream(c, 1)[0];
        let out = whiten(c, &[0x00]);
        assert_eq!(out[0] & 1 == 1, first);
    }

    proptest! {
        #[test]
        fn prop_involution(chan in 0u8..40, data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let c = ch(chan);
            prop_assert_eq!(whiten(c, &whiten(c, &data)), data);
        }

        #[test]
        fn prop_stream_balanced(chan in 0u8..40) {
            // Over a full period the maximal LFSR outputs 64 ones, 63 zeros.
            let s = whitening_stream(ch(chan), 127);
            let ones = s.iter().filter(|&&b| b).count();
            prop_assert_eq!(ones, 64);
        }
    }
}
