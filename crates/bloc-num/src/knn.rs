//! Masked K-nearest-neighbour kernels on the [`crate::par`] executor.
//!
//! The fingerprint fallback (`bloc_core::fallback`) matches a live,
//! possibly hole-ridden feature vector against an offline database. The
//! query therefore carries a **mask**: only dimensions that survived the
//! sounding participate in the distance, so a degraded query is compared
//! on exactly the evidence it still has (an RMS over the surviving
//! dimensions keeps distances comparable across different mask sizes).
//!
//! Distances are pure per-row functions, computed via
//! [`crate::par::map_named`] under the `knn.dist` region — results are
//! bit-identical for any thread count — and the selection sort is fully
//! deterministic: ties break on `(distance, row index)` via `total_cmp`.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::par;

/// One ranked database row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index into the database.
    pub index: usize,
    /// Masked RMS distance to the query.
    pub dist: f64,
}

/// Masked RMS distance between `query` and one database `row`: the root
/// mean square of `query[d] - row[d]` over the dimensions where
/// `mask[d]` is true. Returns `None` when no dimension survives (an
/// all-masked query matches nothing). Slices must share one length.
pub fn masked_rms_distance(query: &[f64], mask: &[bool], row: &[f64]) -> Option<f64> {
    debug_assert_eq!(query.len(), mask.len());
    debug_assert_eq!(query.len(), row.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for ((&q, &m), &r) in query.iter().zip(mask).zip(row) {
        if m {
            let d = q - r;
            sum += d * d;
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some((sum / n as f64).sqrt())
    }
}

/// The `k` nearest rows of a flat row-major feature matrix (`rows.len()`
/// must be a multiple of `dims`) to `query` under the masked RMS
/// distance, nearest first. `k` is clamped to the number of rows; ties
/// and NaN-free ordering are deterministic (`total_cmp`, then row
/// index), and the distance pass runs on the `par` executor (`knn.dist`
/// region) with bit-identical results for any `threads`.
///
/// Returns an empty vector when the matrix is empty, `k == 0`, or the
/// mask blanks every dimension — callers decide whether that is a typed
/// error.
pub fn k_nearest(
    query: &[f64],
    mask: &[bool],
    rows: &[f64],
    dims: usize,
    k: usize,
    threads: usize,
) -> Vec<Neighbor> {
    assert!(dims > 0, "feature dimensionality must be positive");
    assert_eq!(
        rows.len() % dims,
        0,
        "feature matrix length must be a multiple of dims"
    );
    assert_eq!(query.len(), dims, "query length must equal dims");
    assert_eq!(mask.len(), dims, "mask length must equal dims");
    let n_rows = rows.len() / dims;
    if n_rows == 0 || k == 0 {
        return Vec::new();
    }

    let dists = par::map_named("knn.dist", n_rows, threads, |r| {
        masked_rms_distance(query, mask, &rows[r * dims..(r + 1) * dims])
    });
    let mut ranked: Vec<Neighbor> = dists
        .into_iter()
        .enumerate()
        .filter_map(|(index, d)| d.map(|dist| Neighbor { index, dist }))
        .collect();
    ranked.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.index.cmp(&b.index)));
    ranked.truncate(k.min(n_rows));
    ranked
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    #[test]
    fn full_mask_matches_euclidean_rms() {
        let rows = [0.0, 0.0, 3.0, 4.0, 1.0, 1.0];
        let got = k_nearest(&[0.0, 0.0], &[true, true], &rows, 2, 3, 1);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].index, 0);
        assert_eq!(got[1].index, 2);
        assert_eq!(got[2].index, 1);
        assert!((got[2].dist - (25.0f64 / 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mask_excludes_dimensions() {
        // Row 1 is far on dim 0 but identical on dim 1.
        let rows = [0.0, 5.0, 100.0, 5.0];
        let got = k_nearest(&[0.0, 5.0], &[false, true], &rows, 2, 2, 1);
        assert_eq!(got[0].dist, 0.0);
        assert_eq!(got[1].dist, 0.0, "masked dim must not contribute");
    }

    #[test]
    fn all_masked_query_returns_empty() {
        let rows = [1.0, 2.0];
        assert!(k_nearest(&[0.0, 0.0], &[false, false], &rows, 2, 1, 1).is_empty());
    }

    #[test]
    fn k_clamps_to_database_size() {
        let rows = [1.0, 2.0];
        assert_eq!(
            k_nearest(&[0.0, 0.0], &[true, true], &rows, 2, 99, 1).len(),
            1
        );
    }

    #[test]
    fn empty_database_returns_empty() {
        assert!(k_nearest(&[0.0], &[true], &[], 1, 3, 1).is_empty());
    }

    #[test]
    fn duplicate_rows_tie_break_on_index() {
        let rows = [7.0, 7.0, 7.0];
        let got = k_nearest(&[7.0], &[true], &rows, 1, 3, 1);
        assert_eq!(
            got.iter().map(|n| n.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn thread_count_does_not_change_ranking() {
        let dims = 8;
        let n = 257;
        let rows: Vec<f64> = (0..n * dims)
            .map(|i| ((i as f64) * 0.37).sin() * 3.0)
            .collect();
        let query: Vec<f64> = (0..dims).map(|i| (i as f64) * 0.1).collect();
        let mut mask = vec![true; dims];
        mask[3] = false;
        let one = k_nearest(&query, &mask, &rows, dims, 12, 1);
        for t in [2, 4] {
            let multi = k_nearest(&query, &mask, &rows, dims, 12, t);
            assert_eq!(one, multi, "ranking must be identical at {t} threads");
        }
    }
}
