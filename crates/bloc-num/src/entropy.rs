//! Shannon entropy and the *negentropy sharpness* measure of BLoc's
//! multipath-rejection score.
//!
//! Paper §5.4: "for each peak in the likelihood distribution, we compute the
//! entropy of the likelihood distribution in its immediate neighborhood. If
//! the likelihood distribution is almost flat, the entropy will be low and
//! hence, the path is more likely a reflected path."
//!
//! Taken literally with Shannon entropy this is inverted — a *flat*
//! normalized distribution has *maximal* Shannon entropy. The quantity that
//! matches the paper's prose (low for flat, high for peaky) is the
//! **negentropy** `H = ln(N) − H_shannon`, i.e. the divergence of the
//! neighborhood from uniform. We adopt that reading (recorded in DESIGN.md)
//! so the published score `s_x = p_x·e^{bH − aΣd}` and the published weights
//! `a = 0.1`, `b = 0.05` apply as written: direct paths (peaky ⇒ high H) are
//! rewarded, scattered reflections (flat ⇒ low H) are penalized.

/// Shannon entropy (nats) of a non-negative weight vector, normalizing it
/// to a probability distribution first. Returns 0 for an empty or all-zero
/// input.
pub fn shannon(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &w in weights {
        if w > 0.0 && w.is_finite() {
            let p = w / total;
            h -= p * p.ln();
        }
    }
    h
}

/// Negentropy sharpness: `ln(N) − shannon(weights)` where `N` is the number
/// of strictly positive weights. Zero for a flat patch, `ln(N)` in the limit
/// of all mass on one cell. This is the `H` of paper Eq. 18 under our
/// interpretation.
pub fn negentropy(weights: &[f64]) -> f64 {
    let n = weights
        .iter()
        .filter(|w| w.is_finite() && **w > 0.0)
        .count();
    if n <= 1 {
        // A single positive cell is maximally peaky but ln(1) = 0; treat a
        // degenerate window as neutral rather than inventing sharpness.
        return 0.0;
    }
    ((n as f64).ln() - shannon(weights)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn flat_patch_has_zero_negentropy() {
        let w = vec![0.7; 37];
        assert!(shannon(&w) > 3.6e0 - 0.1); // ln 37 ≈ 3.61
        assert!(negentropy(&w).abs() < 1e-12);
    }

    #[test]
    fn peaky_patch_has_high_negentropy() {
        let mut w = vec![1e-6; 37];
        w[18] = 1.0;
        let h = negentropy(&w);
        assert!(
            h > 3.0,
            "near-delta patch should approach ln 37 ≈ 3.61, got {h}"
        );
    }

    #[test]
    fn negentropy_ranks_sharpness() {
        // Direct path (peaky) must out-score a scattered reflection (spread).
        let peaky: Vec<f64> = (0..37)
            .map(|i| (-((i as f64 - 18.0).powi(2)) / 2.0).exp())
            .collect();
        let spread: Vec<f64> = (0..37)
            .map(|i| (-((i as f64 - 18.0).powi(2)) / 200.0).exp())
            .collect();
        assert!(negentropy(&peaky) > negentropy(&spread));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(shannon(&[]), 0.0);
        assert_eq!(shannon(&[0.0, 0.0]), 0.0);
        assert_eq!(negentropy(&[]), 0.0);
        assert_eq!(negentropy(&[5.0]), 0.0);
        assert_eq!(negentropy(&[0.0, 3.0]), 0.0); // one positive cell
    }

    #[test]
    fn scale_invariance() {
        let w = [0.2, 0.5, 0.1, 0.9];
        let w10: Vec<f64> = w.iter().map(|x| x * 10.0).collect();
        assert!((shannon(&w) - shannon(&w10)).abs() < 1e-12);
        assert!((negentropy(&w) - negentropy(&w10)).abs() < 1e-12);
    }

    #[test]
    fn ignores_nonfinite_weights() {
        let w = [1.0, f64::NAN, 2.0, f64::INFINITY];
        let clean = [1.0, 2.0];
        assert!((shannon(&w) - shannon(&clean)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_shannon_bounds(w in proptest::collection::vec(0.0..10.0f64, 1..50)) {
            let n = w.iter().filter(|x| **x > 0.0).count();
            let h = shannon(&w);
            prop_assert!(h >= -1e-12);
            prop_assert!(h <= (n.max(1) as f64).ln() + 1e-9);
        }

        #[test]
        fn prop_negentropy_nonnegative(w in proptest::collection::vec(0.0..10.0f64, 1..50)) {
            prop_assert!(negentropy(&w) >= 0.0);
        }
    }
}
