//! Physical and BLE-band constants shared across the workspace.

/// Speed of light in vacuum, metres per second.
///
/// All time-of-flight ↔ distance conversions in the pipeline use this value
/// (the paper writes it `c` in Eqs. 4–6 and 14–17).
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Base of the 2.4 GHz ISM band used by BLE, in hertz.
///
/// BLE channel *k* (by frequency index, 0..=39) is centred at
/// `2402 MHz + k · 2 MHz`; the 40 channels span 2400–2483.5 MHz (paper
/// Fig. 1a).
pub const BLE_BAND_BASE_HZ: f64 = 2.402e9;

/// Width of one BLE channel, hertz (paper §1: "BLE channels are 2 MHz wide").
pub const BLE_CHANNEL_WIDTH_HZ: f64 = 2.0e6;

/// Number of BLE channels (37 data + 3 advertising; paper Fig. 1a).
pub const BLE_NUM_CHANNELS: usize = 40;

/// Number of BLE data (connection) channels. 37 is prime, which is what
/// guarantees the hop sequence `f_next = f_cur + f_hop mod 37` visits every
/// channel (paper §2.1).
pub const BLE_NUM_DATA_CHANNELS: usize = 37;

/// Total span of the BLE band exploited by BLoc's bandwidth stitching,
/// hertz (paper §5.1: "a total of 80 MHz").
pub const BLE_TOTAL_SPAN_HZ: f64 = 80.0e6;

/// BLE GFSK symbol rate, symbols per second (1 Mb/s uncoded PHY).
pub const BLE_SYMBOL_RATE: f64 = 1.0e6;

/// Nominal BLE GFSK frequency deviation, hertz. Bits 0/1 sit at
/// `f_c ∓ 250 kHz`, i.e. the two data tones are 1 MHz = twice this apart
/// (paper footnote 2: "the separation between the two data bits is just
/// 1 MHz").
pub const BLE_GFSK_DEVIATION_HZ: f64 = 250.0e3;

/// Gaussian filter bandwidth-time product used by BLE GFSK (BT = 0.5).
pub const BLE_GAUSSIAN_BT: f64 = 0.5;

/// Wavelength (metres) of a carrier at frequency `f_hz`.
#[inline]
pub fn wavelength(f_hz: f64) -> f64 {
    SPEED_OF_LIGHT / f_hz
}

/// Centre frequency (hertz) of BLE channel `k` *by frequency index*
/// (0..=39 left-to-right across the band, not the link-layer channel
/// numbering — see `bloc-ble::channels` for the mapping).
#[inline]
pub fn ble_channel_freq(k: usize) -> f64 {
    BLE_BAND_BASE_HZ + k as f64 * BLE_CHANNEL_WIDTH_HZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_spans_eighty_megahertz() {
        let span = ble_channel_freq(BLE_NUM_CHANNELS - 1) - ble_channel_freq(0);
        assert_eq!(span, 78.0e6); // centre-to-centre; edge-to-edge is 80 MHz
        assert_eq!(span + BLE_CHANNEL_WIDTH_HZ, BLE_TOTAL_SPAN_HZ);
    }

    #[test]
    fn wavelength_at_2p4ghz_is_about_12cm() {
        let l = wavelength(2.44e9);
        assert!((l - 0.1229).abs() < 1e-3, "λ = {l}");
    }

    #[test]
    fn data_channel_count_is_prime() {
        let n = BLE_NUM_DATA_CHANNELS;
        assert!(
            (2..n).all(|d| n % d != 0),
            "37 must be prime for full hop coverage"
        );
    }
}
