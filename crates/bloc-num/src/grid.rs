//! Real-valued 2-D grids over a metric region.
//!
//! A [`Grid2D`] is the concrete representation of a BLoc spatial likelihood
//! map: Eq. 17 of the paper evaluated at every point of a rectangular region
//! ("mapped onto the 2-D cartesian coordinates by a simple change of
//! coordinates", §5.3). Grids are row-major, indexed `(ix, iy)` with cell
//! centres at `origin + (ix + 0.5, iy + 0.5) · resolution`.

use crate::point::P2;

/// The geometry of a grid: where it sits in space and how fine it is.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridSpec {
    /// Lower-left corner of the covered region, metres.
    pub origin: P2,
    /// Cell edge length, metres.
    pub resolution: f64,
    /// Number of cells along x.
    pub nx: usize,
    /// Number of cells along y.
    pub ny: usize,
}

impl GridSpec {
    /// Builds a spec covering `[origin, origin + extent]` with cells of the
    /// given resolution; the cell counts round up so the region is covered.
    ///
    /// # Panics
    /// Panics if the resolution or extents are not strictly positive.
    pub fn covering(origin: P2, extent: P2, resolution: f64) -> Self {
        assert!(resolution > 0.0, "grid resolution must be positive");
        assert!(
            extent.x > 0.0 && extent.y > 0.0,
            "grid extent must be positive"
        );
        Self {
            origin,
            resolution,
            nx: (extent.x / resolution).ceil() as usize,
            ny: (extent.y / resolution).ceil() as usize,
        }
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// True when the grid has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Centre of cell `(ix, iy)` in world coordinates.
    #[inline]
    pub fn cell_center(&self, ix: usize, iy: usize) -> P2 {
        P2::new(
            self.origin.x + (ix as f64 + 0.5) * self.resolution,
            self.origin.y + (iy as f64 + 0.5) * self.resolution,
        )
    }

    /// The cell containing world point `p`, if inside the grid.
    #[inline]
    pub fn cell_of(&self, p: P2) -> Option<(usize, usize)> {
        let fx = (p.x - self.origin.x) / self.resolution;
        let fy = (p.y - self.origin.y) / self.resolution;
        if fx < 0.0 || fy < 0.0 {
            return None;
        }
        let (ix, iy) = (fx as usize, fy as usize);
        (ix < self.nx && iy < self.ny).then_some((ix, iy))
    }

    /// Flat row-major index of `(ix, iy)`.
    #[inline]
    pub fn flat(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny);
        iy * self.nx + ix
    }

    /// A coarsened spec over the same region: the origin is kept and the
    /// resolution multiplied by `factor`; cell counts round up so the
    /// coarse grid covers at least the fine extent. Fine cell `(ix, iy)`
    /// falls inside coarse cell `(ix / factor, iy / factor)`.
    ///
    /// # Panics
    /// Panics when `factor == 0`.
    pub fn coarsen(&self, factor: usize) -> GridSpec {
        assert!(factor >= 1, "coarsening factor must be >= 1");
        GridSpec {
            origin: self.origin,
            resolution: self.resolution * factor as f64,
            nx: self.nx.div_ceil(factor),
            ny: self.ny.div_ceil(factor),
        }
    }

    /// An index-aligned sub-grid of `half_extent_m` metres around `center`,
    /// clamped to this grid's bounds. The patch reuses this grid's cell
    /// lattice exactly: patch cell `(j, k)` is parent cell
    /// `(j + x0, k + y0)`, so estimates refined on a patch can be snapped
    /// back onto parent cell centres with no resampling. A `center`
    /// outside the grid clamps to the nearest border cell; the patch is
    /// never empty (it is at least the 1×1 cell containing the clamped
    /// centre).
    ///
    /// # Panics
    /// Panics when the grid is empty.
    pub fn patch(&self, center: P2, half_extent_m: f64) -> GridPatch {
        assert!(!self.is_empty(), "cannot take a patch of an empty grid");
        let r = ((half_extent_m.max(0.0)) / self.resolution).ceil() as usize;
        let clamp_axis = |coord: f64, origin: f64, n: usize| -> usize {
            let f = (coord - origin) / self.resolution;
            if f <= 0.0 {
                0
            } else {
                (f.floor() as usize).min(n - 1)
            }
        };
        let cx = clamp_axis(center.x, self.origin.x, self.nx);
        let cy = clamp_axis(center.y, self.origin.y, self.ny);
        let x0 = cx.saturating_sub(r);
        let y0 = cy.saturating_sub(r);
        let x1 = (cx + r + 1).min(self.nx);
        let y1 = (cy + r + 1).min(self.ny);
        GridPatch {
            spec: GridSpec {
                origin: P2::new(
                    self.origin.x + x0 as f64 * self.resolution,
                    self.origin.y + y0 as f64 * self.resolution,
                ),
                resolution: self.resolution,
                nx: x1 - x0,
                ny: y1 - y0,
            },
            x0,
            y0,
        }
    }
}

/// An index-aligned rectangular sub-window of a parent [`GridSpec`],
/// produced by [`GridSpec::patch`]. Carries both the patch-local spec
/// (for evaluating kernels over just the window) and the exact index
/// offset back into the parent lattice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPatch {
    /// The patch-local grid geometry (same resolution as the parent).
    pub spec: GridSpec,
    /// Parent x-index of patch column 0.
    pub x0: usize,
    /// Parent y-index of patch row 0.
    pub y0: usize,
}

impl GridPatch {
    /// Maps patch-local cell `(ix, iy)` to the parent grid's indices.
    #[inline]
    pub fn to_parent(&self, ix: usize, iy: usize) -> (usize, usize) {
        debug_assert!(ix < self.spec.nx && iy < self.spec.ny);
        (ix + self.x0, iy + self.y0)
    }

    /// Maps parent cell indices into the patch, when covered.
    #[inline]
    pub fn from_parent(&self, ix: usize, iy: usize) -> Option<(usize, usize)> {
        let jx = ix.checked_sub(self.x0)?;
        let jy = iy.checked_sub(self.y0)?;
        (jx < self.spec.nx && jy < self.spec.ny).then_some((jx, jy))
    }

    /// Distance (in cells) from patch-local `(ix, iy)` to the nearest patch
    /// border that is *interior* to `parent` — i.e. a border created by the
    /// windowing, not one the parent grid shares. `usize::MAX` when every
    /// patch border coincides with a parent border (the patch spans the
    /// whole parent along both axes). A small value means a local maximum
    /// at this cell may be an artifact of the cut.
    pub fn interior_border_dist(&self, parent: &GridSpec, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.spec.nx && iy < self.spec.ny);
        let mut d = usize::MAX;
        if self.x0 > 0 {
            d = d.min(ix);
        }
        if self.x0 + self.spec.nx < parent.nx {
            d = d.min(self.spec.nx - 1 - ix);
        }
        if self.y0 > 0 {
            d = d.min(iy);
        }
        if self.y0 + self.spec.ny < parent.ny {
            d = d.min(self.spec.ny - 1 - iy);
        }
        d
    }
}

/// A dense real-valued grid with [`GridSpec`] geometry.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Grid2D {
    spec: GridSpec,
    data: Vec<f64>,
}

impl Grid2D {
    /// A zero-filled grid.
    pub fn zeros(spec: GridSpec) -> Self {
        Self {
            spec,
            data: vec![0.0; spec.len()],
        }
    }

    /// Builds a grid by evaluating `f` at every cell centre.
    pub fn from_fn(spec: GridSpec, mut f: impl FnMut(P2) -> f64) -> Self {
        let mut g = Self::zeros(spec);
        for iy in 0..spec.ny {
            for ix in 0..spec.nx {
                let v = f(spec.cell_center(ix, iy));
                g.data[spec.flat(ix, iy)] = v;
            }
        }
        g
    }

    /// Builds a grid by evaluating `f` at every cell centre, splitting the
    /// rows across `threads` scoped threads (see [`crate::par`]).
    ///
    /// Unlike [`Self::from_fn`] the closure must be `Fn + Sync` so it can
    /// be shared across workers. Cell values are a pure function of the
    /// cell centre, so the result is bit-identical for every thread count;
    /// `threads <= 1` runs inline with no spawn overhead.
    ///
    /// The thread count is tuned down ([`crate::par::tuned_threads`])
    /// when the grid is too small to amortize spawns, and rows are
    /// grouped into multi-row chunks ([`crate::par::auto_chunk_len`]) so
    /// large grids hand each worker a few coarse pieces instead of one
    /// row at a time.
    pub fn from_fn_par(spec: GridSpec, threads: usize, f: impl Fn(P2) -> f64 + Sync) -> Self {
        let mut g = Self::zeros(spec);
        let nx = spec.nx.max(1);
        // A cell evaluation is ~a few hundred ns worst case; 4096 cells
        // per shard keeps the spawn cost under a percent.
        let threads = crate::par::tuned_threads(g.data.len(), threads, 4096);
        let chunk = crate::par::auto_chunk_len(g.data.len(), nx, threads);
        crate::par::for_each_chunk_mut_named(
            "grid.fill",
            &mut g.data,
            chunk,
            threads,
            |start, row| {
                for (off, v) in row.iter_mut().enumerate() {
                    let idx = start + off;
                    *v = f(spec.cell_center(idx % nx, idx / nx));
                }
            },
        );
        g
    }

    /// The grid geometry.
    #[inline]
    pub fn spec(&self) -> GridSpec {
        self.spec
    }

    /// Cell value.
    #[inline]
    pub fn get(&self, ix: usize, iy: usize) -> f64 {
        self.data[self.spec.flat(ix, iy)]
    }

    /// Mutable cell access.
    #[inline]
    pub fn get_mut(&mut self, ix: usize, iy: usize) -> &mut f64 {
        &mut self.data[self.spec.flat(ix, iy)]
    }

    /// Sets a cell value.
    #[inline]
    pub fn set(&mut self, ix: usize, iy: usize, v: f64) {
        let i = self.spec.flat(ix, iy);
        self.data[i] = v;
    }

    /// Value at the cell containing world point `p`, if inside.
    pub fn at(&self, p: P2) -> Option<f64> {
        self.spec.cell_of(p).map(|(ix, iy)| self.get(ix, iy))
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Adds another grid cell-wise (the "sum likelihoods across anchors"
    /// step of §5.3).
    ///
    /// # Panics
    /// Panics if the specs differ.
    pub fn add_assign(&mut self, other: &Grid2D) {
        assert_eq!(self.spec, other.spec, "grid specs must match to combine");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Multiplies every cell by `k`.
    pub fn scale(&mut self, k: f64) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// The maximum cell value and its `(ix, iy)` index; `None` when empty.
    pub fn argmax(&self) -> Option<(usize, usize, f64)> {
        let (mut best, mut best_i) = (f64::NEG_INFINITY, None);
        for iy in 0..self.spec.ny {
            for ix in 0..self.spec.nx {
                let v = self.get(ix, iy);
                if v > best {
                    best = v;
                    best_i = Some((ix, iy));
                }
            }
        }
        best_i.map(|(ix, iy)| (ix, iy, best))
    }

    /// Sum of all cells.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Normalizes the grid so cells sum to 1 (probability mass); no-op for
    /// an all-zero grid.
    pub fn normalize_mass(&mut self) {
        let s = self.sum();
        if s > 0.0 {
            self.scale(1.0 / s);
        }
    }

    /// Normalizes so the maximum cell becomes 1; no-op for all-zero grids.
    pub fn normalize_peak(&mut self) {
        if let Some((_, _, m)) = self.argmax() {
            if m > 0.0 {
                self.scale(1.0 / m);
            }
        }
    }

    /// Bilinearly interpolated value at world point `p`. Points outside
    /// the grid (or within half a cell of the border) clamp to the nearest
    /// cell centre. `None` only when the grid is empty.
    pub fn bilinear(&self, p: P2) -> Option<f64> {
        if self.spec.is_empty() {
            return None;
        }
        let fx = (p.x - self.spec.origin.x) / self.spec.resolution - 0.5;
        let fy = (p.y - self.spec.origin.y) / self.spec.resolution - 0.5;
        let fx = fx.clamp(0.0, (self.spec.nx - 1) as f64);
        let fy = fy.clamp(0.0, (self.spec.ny - 1) as f64);
        let x0 = fx.floor() as usize;
        let y0 = fy.floor() as usize;
        let x1 = (x0 + 1).min(self.spec.nx - 1);
        let y1 = (y0 + 1).min(self.spec.ny - 1);
        let tx = fx - x0 as f64;
        let ty = fy - y0 as f64;
        let v00 = self.get(x0, y0);
        let v10 = self.get(x1, y0);
        let v01 = self.get(x0, y1);
        let v11 = self.get(x1, y1);
        Some(
            v00 * (1.0 - tx) * (1.0 - ty)
                + v10 * tx * (1.0 - ty)
                + v01 * (1.0 - tx) * ty
                + v11 * tx * ty,
        )
    }

    /// Copies the values under `patch` (a window of this grid's own spec)
    /// into a patch-shaped grid.
    ///
    /// # Panics
    /// Panics when the patch window does not fit inside this grid.
    pub fn extract(&self, patch: &GridPatch) -> Grid2D {
        assert!(
            patch.x0 + patch.spec.nx <= self.spec.nx && patch.y0 + patch.spec.ny <= self.spec.ny,
            "patch window must lie inside the parent grid"
        );
        let mut out = Grid2D::zeros(patch.spec);
        for iy in 0..patch.spec.ny {
            for ix in 0..patch.spec.nx {
                let (px, py) = patch.to_parent(ix, iy);
                out.set(ix, iy, self.get(px, py));
            }
        }
        out
    }

    /// Extracts the values in a circular window of half-width `radius`
    /// cells centred on `(cx, cy)`, clipped to the grid.
    ///
    /// This is the "circular neighborhood window of window size 7 × 7"
    /// (paper §7, radius 3) over which the multipath-rejection entropy is
    /// computed.
    pub fn circular_window(&self, cx: usize, cy: usize, radius: usize) -> Vec<f64> {
        let r = radius as isize;
        let r2 = r * r;
        let mut out = Vec::with_capacity((2 * radius + 1).pow(2));
        for dy in -r..=r {
            for dx in -r..=r {
                if dx * dx + dy * dy > r2 {
                    continue;
                }
                let x = cx as isize + dx;
                let y = cy as isize + dy;
                if x < 0 || y < 0 || x as usize >= self.spec.nx || y as usize >= self.spec.ny {
                    continue;
                }
                out.push(self.get(x as usize, y as usize));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec_3x2() -> GridSpec {
        GridSpec {
            origin: P2::new(-1.0, -1.0),
            resolution: 0.5,
            nx: 3,
            ny: 2,
        }
    }

    #[test]
    fn covering_rounds_up() {
        let s = GridSpec::covering(P2::ORIGIN, P2::new(1.0, 1.0), 0.3);
        assert_eq!((s.nx, s.ny), (4, 4));
    }

    #[test]
    fn cell_center_and_lookup_agree() {
        let s = spec_3x2();
        for iy in 0..s.ny {
            for ix in 0..s.nx {
                let c = s.cell_center(ix, iy);
                assert_eq!(s.cell_of(c), Some((ix, iy)));
            }
        }
    }

    #[test]
    fn out_of_bounds_is_none() {
        let s = spec_3x2();
        assert_eq!(s.cell_of(P2::new(-1.01, 0.0)), None);
        assert_eq!(s.cell_of(P2::new(10.0, 0.0)), None);
        assert_eq!(s.cell_of(P2::new(0.0, 0.01)), None); // just above top edge
    }

    #[test]
    fn from_fn_and_argmax() {
        let s = spec_3x2();
        let g = Grid2D::from_fn(s, |p| -(p.dist_sq(P2::new(0.25, -0.25))));
        let (ix, iy, _) = g.argmax().unwrap();
        assert_eq!(s.cell_center(ix, iy), P2::new(0.25, -0.25));
    }

    #[test]
    fn from_fn_par_matches_from_fn_for_any_thread_count() {
        let s = GridSpec {
            origin: P2::new(-1.0, 0.5),
            resolution: 0.21,
            nx: 13,
            ny: 9,
        };
        let f = |p: P2| (p.x * 1.7).sin() * (p.y * 0.9).cos() + p.x;
        let seq = Grid2D::from_fn(s, f);
        for threads in [1, 2, 3, 8] {
            let par = Grid2D::from_fn_par(s, threads, f);
            assert_eq!(seq, par, "threads = {threads} must be bit-identical");
        }
    }

    #[test]
    fn add_and_normalize() {
        let s = spec_3x2();
        let mut a = Grid2D::from_fn(s, |_| 1.0);
        let b = Grid2D::from_fn(s, |_| 2.0);
        a.add_assign(&b);
        assert_eq!(a.sum(), 3.0 * s.len() as f64);
        a.normalize_mass();
        assert!((a.sum() - 1.0).abs() < 1e-12);
        a.normalize_peak();
        assert!((a.argmax().unwrap().2 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "grid specs must match")]
    fn mismatched_add_panics() {
        let mut a = Grid2D::zeros(spec_3x2());
        let b = Grid2D::zeros(GridSpec::covering(P2::ORIGIN, P2::new(1.0, 1.0), 0.5));
        a.add_assign(&b);
    }

    #[test]
    fn circular_window_size_interior() {
        // 7×7 circular window (radius 3): 29 cells pass the dx²+dy² ≤ 9 test.
        let s = GridSpec {
            origin: P2::ORIGIN,
            resolution: 0.1,
            nx: 20,
            ny: 20,
        };
        let g = Grid2D::zeros(s);
        assert_eq!(g.circular_window(10, 10, 3).len(), 29);
    }

    #[test]
    fn circular_window_clips_at_edges() {
        let s = GridSpec {
            origin: P2::ORIGIN,
            resolution: 0.1,
            nx: 20,
            ny: 20,
        };
        let g = Grid2D::zeros(s);
        assert!(g.circular_window(0, 0, 3).len() < 29);
        assert!(!g.circular_window(0, 0, 3).is_empty());
    }

    #[test]
    fn bilinear_matches_cells_and_interpolates() {
        let s = GridSpec {
            origin: P2::ORIGIN,
            resolution: 1.0,
            nx: 3,
            ny: 3,
        };
        let g = Grid2D::from_fn(s, |p| p.x + 10.0 * p.y);
        // At a cell centre, bilinear equals the cell value.
        let c = s.cell_center(1, 1);
        assert!((g.bilinear(c).unwrap() - g.get(1, 1)).abs() < 1e-12);
        // Midway between two centres: the average.
        let mid = s.cell_center(0, 1).midpoint(s.cell_center(1, 1));
        let expect = (g.get(0, 1) + g.get(1, 1)) / 2.0;
        assert!((g.bilinear(mid).unwrap() - expect).abs() < 1e-12);
        // Outside clamps rather than extrapolating.
        let out = g.bilinear(P2::new(-5.0, -5.0)).unwrap();
        assert!((out - g.get(0, 0)).abs() < 1e-12);
    }

    #[test]
    fn coarsen_covers_and_maps_indices_odd_sizes() {
        // 13×9 at 0.21 m coarsened by 4 → 4×3 cells of 0.84 m covering at
        // least the fine extent, with fine (ix, iy) inside coarse
        // (ix/4, iy/4).
        let s = GridSpec {
            origin: P2::new(-1.0, 0.5),
            resolution: 0.21,
            nx: 13,
            ny: 9,
        };
        let c = s.coarsen(4);
        assert_eq!((c.nx, c.ny), (4, 3));
        assert_eq!(c.origin, s.origin);
        assert!((c.resolution - 0.84).abs() < 1e-15);
        assert!(c.nx as f64 * c.resolution >= s.nx as f64 * s.resolution - 1e-12);
        assert!(c.ny as f64 * c.resolution >= s.ny as f64 * s.resolution - 1e-12);
        for iy in 0..s.ny {
            for ix in 0..s.nx {
                let center = s.cell_center(ix, iy);
                assert_eq!(c.cell_of(center), Some((ix / 4, iy / 4)));
            }
        }
    }

    #[test]
    fn coarsen_by_one_is_identity() {
        let s = spec_3x2();
        assert_eq!(s.coarsen(1), s);
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn coarsen_by_zero_panics() {
        let _ = spec_3x2().coarsen(0);
    }

    #[test]
    fn patch_interior_exact_index_mapping() {
        let s = GridSpec {
            origin: P2::new(-0.5, -0.5),
            resolution: 0.08,
            nx: 75,
            ny: 88,
        };
        let center = s.cell_center(40, 50);
        let p = s.patch(center, 0.4); // 0.4 / 0.08 = 5 cells each side
        assert_eq!((p.x0, p.y0), (35, 45));
        assert_eq!((p.spec.nx, p.spec.ny), (11, 11));
        // Round-trip index mapping and near-identical cell centres (the
        // patch origin is derived arithmetically, so centres agree to
        // floating-point rounding, not necessarily bit-for-bit).
        for iy in 0..p.spec.ny {
            for ix in 0..p.spec.nx {
                let (px, py) = p.to_parent(ix, iy);
                assert_eq!(p.from_parent(px, py), Some((ix, iy)));
                let a = p.spec.cell_center(ix, iy);
                let b = s.cell_center(px, py);
                assert!(a.dist(b) < 1e-10, "{a} vs {b}");
            }
        }
        // The centre cell maps back to the requested parent cell.
        assert_eq!(p.from_parent(40, 50), Some((5, 5)));
        assert_eq!(p.from_parent(0, 0), None);
    }

    #[test]
    fn patch_clamps_at_boundaries() {
        let s = GridSpec {
            origin: P2::ORIGIN,
            resolution: 0.1,
            nx: 20,
            ny: 10,
        };
        // Near the lower-left corner: the window clips to the grid.
        let p = s.patch(s.cell_center(1, 0), 0.3);
        assert_eq!((p.x0, p.y0), (0, 0));
        assert_eq!((p.spec.nx, p.spec.ny), (5, 4));
        // A centre outside the grid clamps to the border cell.
        let q = s.patch(P2::new(99.0, -99.0), 0.2);
        assert_eq!((q.x0, q.y0), (17, 0));
        assert_eq!((q.spec.nx, q.spec.ny), (3, 3));
        // Degenerate half-extent: the single containing cell.
        let r = s.patch(s.cell_center(7, 4), 0.0);
        assert_eq!((r.x0, r.y0, r.spec.nx, r.spec.ny), (7, 4, 1, 1));
    }

    #[test]
    fn patch_interior_border_distance() {
        let s = GridSpec {
            origin: P2::ORIGIN,
            resolution: 0.1,
            nx: 20,
            ny: 10,
        };
        // Patch flush with the left and bottom parent borders: only its
        // right and top edges are interior cuts.
        let p = s.patch(s.cell_center(1, 1), 0.25);
        assert_eq!((p.x0, p.y0), (0, 0));
        let (nx, ny) = (p.spec.nx, p.spec.ny);
        assert_eq!(p.interior_border_dist(&s, 0, 0), (nx - 1).min(ny - 1));
        assert_eq!(p.interior_border_dist(&s, nx - 1, 0), 0);
        assert_eq!(p.interior_border_dist(&s, 0, ny - 1), 0);
        // A patch spanning the whole parent has no interior borders.
        let q = s.patch(s.cell_center(10, 5), 100.0);
        assert_eq!((q.spec.nx, q.spec.ny), (s.nx, s.ny));
        assert_eq!(q.interior_border_dist(&s, 3, 3), usize::MAX);
    }

    #[test]
    fn extract_copies_patch_values() {
        let s = GridSpec {
            origin: P2::ORIGIN,
            resolution: 0.5,
            nx: 9,
            ny: 7,
        };
        let g = Grid2D::from_fn(s, |p| p.x * 10.0 + p.y);
        let patch = s.patch(s.cell_center(4, 3), 0.75);
        let sub = g.extract(&patch);
        assert_eq!(sub.spec(), patch.spec);
        for iy in 0..patch.spec.ny {
            for ix in 0..patch.spec.nx {
                let (px, py) = patch.to_parent(ix, iy);
                assert_eq!(sub.get(ix, iy), g.get(px, py));
            }
        }
    }

    proptest! {
        #[test]
        fn prop_patch_mapping_is_exact(
            cx in 0usize..23, cy in 0usize..17, half in 0.0..2.0f64
        ) {
            let s = GridSpec { origin: P2::new(-0.7, 0.3), resolution: 0.13, nx: 23, ny: 17 };
            let p = s.patch(s.cell_center(cx, cy), half);
            prop_assert!(p.spec.nx >= 1 && p.spec.ny >= 1);
            prop_assert!(p.x0 + p.spec.nx <= s.nx && p.y0 + p.spec.ny <= s.ny);
            // The requested centre cell is always covered.
            prop_assert!(p.from_parent(cx, cy).is_some());
            for iy in 0..p.spec.ny {
                for ix in 0..p.spec.nx {
                    let (px, py) = p.to_parent(ix, iy);
                    prop_assert_eq!(p.from_parent(px, py), Some((ix, iy)));
                    prop_assert!(p.spec.cell_center(ix, iy).dist(s.cell_center(px, py)) < 1e-9);
                }
            }
        }

        #[test]
        fn prop_bilinear_within_cell_bounds(x in 0.0..2.9f64, y in 0.0..2.9f64) {
            let s = GridSpec { origin: P2::ORIGIN, resolution: 1.0, nx: 3, ny: 3 };
            let g = Grid2D::from_fn(s, |p| (p.x * 1.3).sin() + (p.y * 0.7).cos());
            let v = g.bilinear(P2::new(x, y)).unwrap();
            let lo = g.data().iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = g.data().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            // Bilinear interpolation never over/undershoots the data range.
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }

        #[test]
        fn prop_cell_of_total_inside(x in 0.0..3.0f64, y in 0.0..2.0f64) {
            let s = GridSpec { origin: P2::ORIGIN, resolution: 0.25, nx: 12, ny: 8 };
            // Points strictly inside the covered region always map to a cell.
            prop_assume!(x < 3.0 && y < 2.0);
            let c = s.cell_of(P2::new(x, y));
            prop_assert!(c.is_some());
            let (ix, iy) = c.unwrap();
            let center = s.cell_center(ix, iy);
            prop_assert!((center.x - x).abs() <= s.resolution / 2.0 + 1e-12);
            prop_assert!((center.y - y).abs() <= s.resolution / 2.0 + 1e-12);
        }
    }
}
