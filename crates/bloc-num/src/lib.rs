//! # bloc-num — numerics substrate for the BLoc workspace
//!
//! The BLoc localization pipeline ([paper: *BLoc: CSI-based Accurate
//! Localization for BLE Tags*, CoNEXT '18]) is, numerically, a chain of
//! complex-valued correlations over spatial grids followed by peak analysis.
//! This crate provides every numeric primitive the rest of the workspace
//! needs, with no external math dependencies:
//!
//! * [`complex::C64`] — double-precision complex numbers with the usual
//!   arithmetic, polar forms and unit phasors.
//! * [`grid::Grid2D`] — real-valued 2-D grids over a metric region of space;
//!   the representation of spatial likelihood maps (paper Eq. 17).
//! * [`peaks`] — local-maximum extraction on grids (paper §5.4).
//! * [`entropy`] — Shannon entropy and the *negentropy sharpness* measure
//!   used by BLoc's multipath-rejection score (paper Eq. 18).
//! * [`stats`] — medians, percentiles, CDFs, RMSE: everything the
//!   evaluation section (paper §8) reports.
//! * [`linalg`] — tiny dense solvers and bearing-line intersection used by
//!   the AoA-combining baseline.
//! * [`fft`] — a radix-2 FFT used for spectral sanity checks of the GFSK
//!   modulator.
//! * [`par`] — a std-only scoped-thread work splitter shared by every
//!   CPU-bound fan-out in the workspace (grid rows, location sweeps,
//!   ablation batteries).
//! * [`angle`], [`constants`] — angle hygiene and physical constants.
//!
//! The crate is deliberately free of `unsafe` and of any global state; all
//! functions are pure and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angle;
pub mod complex;
pub mod constants;
pub mod entropy;
pub mod fft;
pub mod grid;
pub mod knn;
pub mod linalg;
pub mod par;
pub mod peaks;
pub mod point;
pub mod stats;

pub use complex::C64;
pub use grid::{Grid2D, GridSpec};
pub use point::P2;
