//! # bloc-num — numerics substrate for the BLoc workspace
//!
//! The BLoc localization pipeline ([paper: *BLoc: CSI-based Accurate
//! Localization for BLE Tags*, CoNEXT '18]) is, numerically, a chain of
//! complex-valued correlations over spatial grids followed by peak analysis.
//! This crate provides every numeric primitive the rest of the workspace
//! needs, with no external math dependencies:
//!
//! * [`complex::C64`] — double-precision complex numbers with the usual
//!   arithmetic, polar forms and unit phasors.
//! * [`grid::Grid2D`] — real-valued 2-D grids over a metric region of space;
//!   the representation of spatial likelihood maps (paper Eq. 17).
//! * [`peaks`] — local-maximum extraction on grids (paper §5.4).
//! * [`entropy`] — Shannon entropy and the *negentropy sharpness* measure
//!   used by BLoc's multipath-rejection score (paper Eq. 18).
//! * [`stats`] — medians, percentiles, CDFs, RMSE: everything the
//!   evaluation section (paper §8) reports.
//! * [`linalg`] — tiny dense solvers and bearing-line intersection used by
//!   the AoA-combining baseline.
//! * [`fft`] — a radix-2 FFT used for spectral sanity checks of the GFSK
//!   modulator.
//! * [`par`] — a std-only scoped-thread work splitter shared by every
//!   CPU-bound fan-out in the workspace (grid rows, location sweeps,
//!   ablation batteries), with work-size thresholding so tiny calls stay
//!   serial.
//! * [`simd`], [`sweep`] — the 4-wide complex phasor-sweep kernels behind
//!   both hot loops (likelihood Eq. 17 and channel synthesis Eq. 2), with
//!   runtime AVX2 dispatch and a bit-identical scalar fallback.
//! * [`angle`], [`constants`] — angle hygiene and physical constants.
//!
//! All functions are pure and deterministic. `unsafe` is denied
//! crate-wide except inside [`simd`]/[`sweep`], whose narrow allowances
//! exist solely for CPU-feature-gated intrinsics and are documented at
//! each site.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod angle;
pub mod complex;
pub mod constants;
pub mod entropy;
pub mod fft;
pub mod grid;
pub mod knn;
pub mod linalg;
pub mod par;
pub mod peaks;
pub mod point;
pub mod seed;
pub mod simd;
pub mod stats;
pub mod sweep;

pub use complex::C64;
pub use grid::{Grid2D, GridPatch, GridSpec};
pub use point::P2;
