//! Local-maximum extraction on 2-D grids.
//!
//! BLoc's multipath rejection (paper §5.4) operates on "each peak in the
//! likelihood profile": it scores every local maximum of the combined
//! spatial likelihood and then picks the best-scoring one as the direct
//! path. This module finds those peaks.

use crate::grid::Grid2D;
use crate::point::P2;

/// A local maximum of a likelihood grid.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Peak {
    /// Cell x index.
    pub ix: usize,
    /// Cell y index.
    pub iy: usize,
    /// World coordinates of the cell centre.
    pub position: P2,
    /// Likelihood value at the peak (`p_x` in paper Eq. 18).
    pub value: f64,
}

/// Options controlling peak extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PeakOptions {
    /// Neighborhood radius (cells) within which a peak must dominate. 1 is
    /// the classic 8-neighbour local maximum; larger values suppress
    /// shoulder peaks riding on a bigger lobe.
    pub dominance_radius: usize,
    /// Discard peaks below `min_rel_height · max(grid)`. The paper's score
    /// already down-weights weak peaks, so this is a pre-filter that keeps
    /// the candidate list short.
    pub min_rel_height: f64,
    /// Keep at most this many peaks (strongest first). `usize::MAX` keeps
    /// all.
    pub max_peaks: usize,
}

impl Default for PeakOptions {
    fn default() -> Self {
        Self {
            dominance_radius: 2,
            min_rel_height: 0.35,
            max_peaks: 8,
        }
    }
}

/// Finds local maxima of `grid` under the given options, strongest first.
///
/// A cell is a peak when it is strictly greater than every other cell in
/// the square neighborhood of `dominance_radius` (ties broken towards the
/// lexicographically smaller index so plateaus yield one peak, not many).
pub fn find_peaks(grid: &Grid2D, opts: &PeakOptions) -> Vec<Peak> {
    let spec = grid.spec();
    let Some((_, _, max_v)) = grid.argmax() else {
        return Vec::new();
    };
    if max_v <= 0.0 || max_v.is_nan() {
        return Vec::new();
    }
    let floor = max_v * opts.min_rel_height;
    let r = opts.dominance_radius as isize;

    let mut peaks = Vec::new();
    for iy in 0..spec.ny {
        for ix in 0..spec.nx {
            let v = grid.get(ix, iy);
            if v < floor {
                continue;
            }
            if is_dominant(grid, ix, iy, r) {
                peaks.push(Peak {
                    ix,
                    iy,
                    position: spec.cell_center(ix, iy),
                    value: v,
                });
            }
        }
    }
    peaks.sort_by(|a, b| {
        b.value
            .partial_cmp(&a.value)
            .expect("likelihoods must be finite")
    });
    peaks.truncate(opts.max_peaks);
    peaks
}

/// True when `(ix, iy)` dominates its square neighborhood of radius `r`.
fn is_dominant(grid: &Grid2D, ix: usize, iy: usize, r: isize) -> bool {
    let spec = grid.spec();
    let v = grid.get(ix, iy);
    for dy in -r..=r {
        for dx in -r..=r {
            if dx == 0 && dy == 0 {
                continue;
            }
            let x = ix as isize + dx;
            let y = iy as isize + dy;
            if x < 0 || y < 0 || x as usize >= spec.nx || y as usize >= spec.ny {
                continue;
            }
            let w = grid.get(x as usize, y as usize);
            if w > v {
                return false;
            }
            // Plateau tie-break: defer to the smaller flat index.
            if w == v && spec.flat(x as usize, y as usize) < spec.flat(ix, iy) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;
    use proptest::prelude::*;

    fn spec() -> GridSpec {
        GridSpec {
            origin: P2::ORIGIN,
            resolution: 0.1,
            nx: 40,
            ny: 40,
        }
    }

    /// A Gaussian bump centred at `c` with amplitude `a` and width `s`.
    fn bump(p: P2, c: P2, a: f64, s: f64) -> f64 {
        a * (-p.dist_sq(c) / (2.0 * s * s)).exp()
    }

    #[test]
    fn single_bump_single_peak() {
        let c = P2::new(2.05, 1.55);
        let g = Grid2D::from_fn(spec(), |p| bump(p, c, 1.0, 0.3));
        let peaks = find_peaks(&g, &PeakOptions::default());
        assert_eq!(peaks.len(), 1);
        assert!(peaks[0].position.dist(c) < 0.1);
    }

    #[test]
    fn two_bumps_sorted_by_strength() {
        let c1 = P2::new(1.05, 1.05);
        let c2 = P2::new(3.05, 3.05);
        let g = Grid2D::from_fn(spec(), |p| bump(p, c1, 1.0, 0.25) + bump(p, c2, 0.6, 0.25));
        let peaks = find_peaks(&g, &PeakOptions::default());
        assert_eq!(peaks.len(), 2);
        assert!(peaks[0].position.dist(c1) < 0.1);
        assert!(peaks[1].position.dist(c2) < 0.1);
        assert!(peaks[0].value > peaks[1].value);
    }

    #[test]
    fn weak_peaks_filtered() {
        let c1 = P2::new(1.05, 1.05);
        let c2 = P2::new(3.05, 3.05);
        let g = Grid2D::from_fn(spec(), |p| bump(p, c1, 1.0, 0.25) + bump(p, c2, 0.05, 0.25));
        let peaks = find_peaks(
            &g,
            &PeakOptions {
                min_rel_height: 0.2,
                ..Default::default()
            },
        );
        assert_eq!(peaks.len(), 1);
    }

    #[test]
    fn plateau_yields_one_peak() {
        let g = Grid2D::from_fn(spec(), |_| 1.0);
        let peaks = find_peaks(
            &g,
            &PeakOptions {
                max_peaks: usize::MAX,
                ..Default::default()
            },
        );
        assert_eq!(peaks.len(), 1, "a constant grid is one plateau, one peak");
    }

    #[test]
    fn all_zero_grid_has_no_peaks() {
        let g = Grid2D::zeros(spec());
        assert!(find_peaks(&g, &PeakOptions::default()).is_empty());
    }

    #[test]
    fn max_peaks_truncates() {
        let mut g = Grid2D::zeros(spec());
        for k in 0..10 {
            g.set(4 * k + 2, 2, 1.0 + k as f64 * 0.01);
        }
        let peaks = find_peaks(
            &g,
            &PeakOptions {
                dominance_radius: 1,
                min_rel_height: 0.0,
                max_peaks: 3,
            },
        );
        assert_eq!(peaks.len(), 3);
    }

    proptest! {
        #[test]
        fn prop_peaks_are_local_maxima(seed_x in 0.5..3.5f64, seed_y in 0.5..3.5f64,
                                       amp in 0.5..2.0f64, width in 0.15..0.6f64) {
            let c = P2::new(seed_x, seed_y);
            let g = Grid2D::from_fn(spec(), |p| bump(p, c, amp, width));
            let peaks = find_peaks(&g, &PeakOptions::default());
            prop_assert!(!peaks.is_empty());
            for pk in &peaks {
                // every reported peak dominates its 8-neighborhood
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let x = pk.ix as i64 + dx;
                        let y = pk.iy as i64 + dy;
                        if x < 0 || y < 0 || x >= 40 || y >= 40 || (dx == 0 && dy == 0) {
                            continue;
                        }
                        prop_assert!(g.get(x as usize, y as usize) <= pk.value);
                    }
                }
            }
        }
    }
}
