//! The unified phasor-sweep core shared by the likelihood engine
//! (`bloc-core`, paper Eq. 17) and the channel-synthesis engine
//! (`bloc-chan`, paper Eq. 2).
//!
//! Both hot loops in the workspace are the same computation: a phase that
//! is **linear in frequency** (`φ(f) = w·f` with `w = ±2πd/c`) evaluated
//! over one sounding's band comb. On BLE's uniform 2 MHz comb the phasor
//! at band `k` follows from band `k−1` by one exact complex rotation, so
//! the whole sweep costs two `cis` calls (seed + step) and then pure
//! multiply-adds. [`CombPlan`] detects the comb once; the two kernels
//! below walk it:
//!
//! * [`write_comb_cells`] — the likelihood recurrence: SIMD lanes are
//!   **antenna rotation chains** of one (cell, anchor) pair; each cell
//!   reduces to the Eq. 17 coherent/non-coherent combining value.
//! * [`sweep_tones_into`] — the synthesis recurrence: SIMD lanes are
//!   **four consecutive comb slots** of one propagation path; all paths
//!   accumulate into a dense slot buffer that is scattered back to
//!   sounding order.
//!
//! Each kernel is one generic body instantiated for both [`simd`] vector
//! implementations and runtime-dispatched ([`simd::active_level`]), so
//! the scalar fallback and the AVX2 path are bit-identical by
//! construction. Off-comb band sets fall back to per-band `cis` — still
//! exact, just not recurrence-accelerated.

use crate::complex::{self, C64};
use crate::simd::{self, Cx4, F64x4, ScalarX4, SimdLevel};

/// How far (in hertz) a band may sit off the comb and still count as on
/// it. BLE channel centres are exact megahertz multiples, so any real
/// deviation is a unit-test fabrication, not measurement noise.
pub const COMB_TOLERANCE_HZ: f64 = 1.0;

/// The frequency walk a recurrence kernel takes across surviving bands —
/// the one comb detector shared by the likelihood engine (`BandPlan`'s
/// former role) and the channel synthesizer (`FreqComb`'s former role).
///
/// Bands are visited in ascending frequency. When every band offset from
/// the lowest frequency is an integer multiple of one comb spacing (BLE:
/// 2 MHz), `gaps[k]` holds how many comb slots to advance from band
/// `k−1` to band `k` (first entry 0) and the rotation recurrence is
/// exact. Otherwise `step_hz` is 0 and kernels fall back to per-band
/// `cis`. Degenerate inputs (zero or one distinct frequency) are valid
/// but not a comb: the fallback handles them exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct CombPlan {
    /// Indices into the caller's band order, ascending frequency.
    pub order: Vec<usize>,
    /// Frequencies in plan (ascending) order, hertz.
    pub freqs: Vec<f64>,
    /// The lowest surviving frequency, hertz.
    pub base_hz: f64,
    /// Comb spacing, hertz; 0 when the bands are not on a uniform comb.
    pub step_hz: f64,
    /// Comb slots to advance per planned band; empty when `step_hz == 0`.
    pub gaps: Vec<u32>,
    /// Absolute comb slot of each planned band (`slots[k] = Σ gaps[..=k]`);
    /// empty when `step_hz == 0`. Lets the dense tone kernel scatter.
    pub slots: Vec<u32>,
}

impl CombPlan {
    /// Plans the walk for bands with the given centre frequencies (in
    /// their stored order).
    pub fn build(freqs_in_order: &[f64]) -> Self {
        let mut order: Vec<usize> = (0..freqs_in_order.len()).collect();
        order.sort_by(|&a, &b| freqs_in_order[a].total_cmp(&freqs_in_order[b]));
        let freqs: Vec<f64> = order.iter().map(|&k| freqs_in_order[k]).collect();
        let base_hz = freqs.first().copied().unwrap_or(0.0);

        // Candidate comb spacing: the smallest positive adjacent gap.
        let mut step_hz = f64::INFINITY;
        for w in freqs.windows(2) {
            let d = w[1] - w[0];
            if d > 0.0 {
                step_hz = step_hz.min(d);
            }
        }
        if !step_hz.is_finite() {
            // Zero or one distinct frequency: a degenerate (but valid)
            // comb — every gap is zero slots, and no recurrence applies.
            return Self {
                gaps: vec![0; freqs.len()],
                slots: vec![0; freqs.len()],
                order,
                freqs,
                base_hz,
                step_hz: 0.0,
            };
        }

        let mut gaps = Vec::with_capacity(freqs.len());
        let mut slots = Vec::with_capacity(freqs.len());
        let mut prev_slot: i64 = 0;
        for &f in &freqs {
            let raw = (f - base_hz) / step_hz;
            let rounded = raw.round();
            if ((f - base_hz) - rounded * step_hz).abs() > COMB_TOLERANCE_HZ
                || rounded < 0.0
                || rounded > u32::MAX as f64
            {
                // Off-comb band: no exact recurrence exists.
                return Self {
                    order,
                    freqs,
                    base_hz,
                    step_hz: 0.0,
                    gaps: Vec::new(),
                    slots: Vec::new(),
                };
            }
            let slot = rounded as i64;
            gaps.push((slot - prev_slot) as u32);
            slots.push(rounded as u32);
            prev_slot = slot;
        }
        Self {
            order,
            freqs,
            base_hz,
            step_hz,
            gaps,
            slots,
        }
    }

    /// True when the exact rotation recurrence applies.
    pub fn is_uniform_comb(&self) -> bool {
        self.step_hz > 0.0 && !self.gaps.is_empty()
    }

    /// Number of planned bands.
    pub fn n_bands(&self) -> usize {
        self.freqs.len()
    }

    /// Total comb slots spanned (highest slot + 1); 0 when off-comb.
    pub fn span(&self) -> usize {
        if !self.is_uniform_comb() {
            return 0;
        }
        self.slots.last().map_or(0, |&s| s as usize + 1)
    }

    /// True when every planned band advances exactly one comb slot (the
    /// BLE 37-channel case): the dense kernels skip the gap loop.
    pub fn is_dense(&self) -> bool {
        self.is_uniform_comb()
            && self.gaps.first() == Some(&0)
            && self.gaps[1..].iter().all(|&g| g == 1)
    }
}

/// How the per-lane accumulators of one cell reduce to its likelihood
/// value — mirrors `bloc_core::likelihood::AntennaCombining` without the
/// dependency (lanes are antennas on the likelihood side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// `|Σ lanes|` — lanes sum coherently.
    Coherent,
    /// `Σ |lane|` — each lane contributes its magnitude.
    Noncoherent,
    /// `|Σ| + 0.5·Σ|·|` — the workspace's hybrid combining.
    Hybrid,
}

#[inline(always)]
fn combine_value(combine: Combine, coh_re: f64, coh_im: f64, non: f64) -> f64 {
    // `sqrt(re² + im²)` instead of `hypot`: the libm `hypot` guards
    // against overflow the likelihood magnitudes can't reach, and costs
    // more than the whole 37-band recurrence per cell.
    let coherent = (coh_re * coh_re + coh_im * coh_im).sqrt();
    match combine {
        Combine::Coherent => coherent,
        Combine::Noncoherent => non,
        Combine::Hybrid => coherent + 0.5 * non,
    }
}

/// Borrowed inputs for the likelihood cell kernel: one anchor's steering
/// phasors (cell-major) and channel weights (slot-major), both padded to
/// `n_lanes` (a multiple of 4) with neutral lanes — weight 0, phasor 1 —
/// so padding contributes exact zeros.
#[derive(Debug, Clone, Copy)]
pub struct CellSweep<'a> {
    /// `e^{ιw·f_base}` real parts, `seed_re[cell·n_lanes + lane]`.
    pub seed_re: &'a [f64],
    /// Seed imaginary parts, same indexing.
    pub seed_im: &'a [f64],
    /// Comb-step rotation real parts, same indexing.
    pub step_re: &'a [f64],
    /// Step imaginary parts, same indexing.
    pub step_im: &'a [f64],
    /// Channel weights `α`, `alpha_re[slot·n_lanes + lane]`.
    pub alpha_re: &'a [f64],
    /// Weight imaginary parts, same indexing.
    pub alpha_im: &'a [f64],
    /// Lane stride — antennas rounded up to a multiple of 4.
    pub n_lanes: usize,
    /// Comb-slot advances per planned band ([`CombPlan::gaps`]).
    pub gaps: &'a [u32],
}

/// One lane block over a dense comb (every gap after the first is one
/// slot): two interleaved rotation chains advanced by `step²` halve the
/// serial complex-multiply latency the pipeline must hide.
#[inline(always)]
fn dense_block<V: F64x4>(
    seed: Cx4<V>,
    step: Cx4<V>,
    alpha_re: &[f64],
    alpha_im: &[f64],
    n_lanes: usize,
    lane0: usize,
    n_bands: usize,
) -> Cx4<V> {
    let step2 = step.mul(step);
    let mut rot_e = seed; // bands 0, 2, 4, …
    let mut rot_o = seed.mul(step); // bands 1, 3, 5, …
    let mut acc_e = Cx4::<V>::zero();
    let mut acc_o = Cx4::<V>::zero();
    let pairs = n_bands / 2;
    for p in 0..pairs {
        let e = (2 * p) * n_lanes + lane0;
        let o = e + n_lanes;
        let a_e = Cx4 {
            re: V::load(&alpha_re[e..]),
            im: V::load(&alpha_im[e..]),
        };
        let a_o = Cx4 {
            re: V::load(&alpha_re[o..]),
            im: V::load(&alpha_im[o..]),
        };
        acc_e = acc_e.add(a_e.mul(rot_e));
        acc_o = acc_o.add(a_o.mul(rot_o));
        rot_e = rot_e.mul(step2);
        rot_o = rot_o.mul(step2);
    }
    if n_bands % 2 == 1 {
        let s = (n_bands - 1) * n_lanes + lane0;
        let a = Cx4 {
            re: V::load(&alpha_re[s..]),
            im: V::load(&alpha_im[s..]),
        };
        acc_e = acc_e.add(a.mul(rot_e));
    }
    acc_e.add(acc_o)
}

/// One lane block over a general uniform comb: single rotation chain,
/// `gaps[k]` step multiplies per band.
#[inline(always)]
fn gap_block<V: F64x4>(
    seed: Cx4<V>,
    step: Cx4<V>,
    alpha_re: &[f64],
    alpha_im: &[f64],
    n_lanes: usize,
    lane0: usize,
    gaps: &[u32],
) -> Cx4<V> {
    let mut rot = seed;
    let mut acc = Cx4::<V>::zero();
    for (slot, &gap) in gaps.iter().enumerate() {
        for _ in 0..gap {
            rot = rot.mul(step);
        }
        let s = slot * n_lanes + lane0;
        let a = Cx4 {
            re: V::load(&alpha_re[s..]),
            im: V::load(&alpha_im[s..]),
        };
        acc = acc.add(a.mul(rot));
    }
    acc
}

#[inline(always)]
fn comb_cells_body<V: F64x4>(
    s: &CellSweep<'_>,
    combine: Combine,
    first_cell: usize,
    out: &mut [f64],
) {
    let nl = s.n_lanes;
    let nb = s.gaps.len();
    let dense = s.gaps.first() == Some(&0) && s.gaps[1..].iter().all(|&g| g == 1);
    for (k, v) in out.iter_mut().enumerate() {
        let cell = first_cell + k;
        let mut coh_re = 0.0;
        let mut coh_im = 0.0;
        let mut non = 0.0;
        for lane0 in (0..nl).step_by(4) {
            let base = cell * nl + lane0;
            let seed = Cx4 {
                re: V::load(&s.seed_re[base..]),
                im: V::load(&s.seed_im[base..]),
            };
            let step = Cx4 {
                re: V::load(&s.step_re[base..]),
                im: V::load(&s.step_im[base..]),
            };
            let acc = if dense {
                dense_block::<V>(seed, step, s.alpha_re, s.alpha_im, nl, lane0, nb)
            } else {
                gap_block::<V>(seed, step, s.alpha_re, s.alpha_im, nl, lane0, s.gaps)
            };
            coh_re += acc.re.hsum();
            coh_im += acc.im.hsum();
            non += acc.abs().hsum();
        }
        *v = combine_value(combine, coh_re, coh_im, non);
    }
}

fn comb_cells_scalar(s: &CellSweep<'_>, combine: Combine, first_cell: usize, out: &mut [f64]) {
    comb_cells_body::<ScalarX4>(s, combine, first_cell, out);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn comb_cells_avx2(s: &CellSweep<'_>, combine: Combine, first_cell: usize, out: &mut [f64]) {
    comb_cells_body::<simd::AvxX4>(s, combine, first_cell, out);
}

/// [`write_comb_cells`] on an explicit vector level — what the
/// dispatch-equivalence tests drive so they never mutate process state.
#[allow(unsafe_code)]
pub fn write_comb_cells_at(
    level: SimdLevel,
    s: &CellSweep<'_>,
    combine: Combine,
    first_cell: usize,
    out: &mut [f64],
) {
    assert!(
        s.n_lanes >= 4 && s.n_lanes % 4 == 0,
        "lane stride must be a positive multiple of 4"
    );
    let needed = (first_cell + out.len()) * s.n_lanes;
    assert!(
        s.seed_re.len() >= needed
            && s.seed_im.len() >= needed
            && s.step_re.len() >= needed
            && s.step_im.len() >= needed,
        "steering tables shorter than the requested cell range"
    );
    let alpha_needed = s.gaps.len() * s.n_lanes;
    assert!(s.alpha_re.len() >= alpha_needed && s.alpha_im.len() >= alpha_needed);
    match level {
        SimdLevel::Scalar => comb_cells_scalar(s, combine, first_cell, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `SimdLevel::Avx2` is only constructed behind a runtime
        // `is_x86_feature_detected!("avx2")` check (see `bloc_num::simd`).
        SimdLevel::Avx2 => unsafe { comb_cells_avx2(s, combine, first_cell, out) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2 => comb_cells_scalar(s, combine, first_cell, out),
    }
}

/// Evaluates the Eq. 17 recurrence for cells `first_cell ..
/// first_cell + out.len()` of one anchor map, writing each cell's
/// combined likelihood value. Lanes are antenna rotation chains; the
/// vector path is chosen once per call via [`simd::active_level`].
pub fn write_comb_cells(s: &CellSweep<'_>, combine: Combine, first_cell: usize, out: &mut [f64]) {
    write_comb_cells_at(simd::active_level(), s, combine, first_cell, out);
}

/// Borrowed inputs for the off-comb fallback: per-cell relative distances
/// instead of phasor tables (the phase is rebuilt per band with `cis` —
/// exact for any frequency set, just not recurrence-accelerated).
#[derive(Debug, Clone, Copy)]
pub struct OffCombSweep<'a> {
    /// Relative distances, `delta[cell·n_lanes + lane]`, metres; padding
    /// lanes hold 0.
    pub delta: &'a [f64],
    /// Channel weights `α`, `alpha_re[slot·n_lanes + lane]`; padding
    /// lanes hold 0.
    pub alpha_re: &'a [f64],
    /// Weight imaginary parts, same indexing.
    pub alpha_im: &'a [f64],
    /// Lane stride — antennas rounded up to a multiple of 4.
    pub n_lanes: usize,
    /// Band frequencies in plan order, hertz.
    pub freqs: &'a [f64],
    /// Phase slope per (metre · hertz): `±2π/c`.
    pub phase_per_hz: f64,
}

/// Evaluates the off-comb per-band-`cis` fallback over a cell range with
/// the same combining semantics as [`write_comb_cells`]. Scalar on every
/// dispatch level (the transcendental dominates, not the arithmetic).
pub fn write_offcomb_cells(
    s: &OffCombSweep<'_>,
    combine: Combine,
    first_cell: usize,
    out: &mut [f64],
) {
    let nl = s.n_lanes;
    debug_assert!(s.alpha_re.len() >= s.freqs.len() * nl);
    let mut acc = vec![complex::ZERO; nl];
    for (k, v) in out.iter_mut().enumerate() {
        let cell = first_cell + k;
        let deltas = &s.delta[cell * nl..(cell + 1) * nl];
        for a in acc.iter_mut() {
            *a = complex::ZERO;
        }
        for (slot, &f) in s.freqs.iter().enumerate() {
            let row = slot * nl;
            for (j, &d) in deltas.iter().enumerate() {
                let a = C64::new(s.alpha_re[row + j], s.alpha_im[row + j]);
                acc[j] += a * C64::cis(s.phase_per_hz * d * f);
            }
        }
        let mut coh = complex::ZERO;
        let mut non = 0.0;
        for &a in &acc {
            coh += a;
            non += (a.re * a.re + a.im * a.im).sqrt();
        }
        *v = combine_value(combine, coh.re, coh.im, non);
    }
}

/// Reusable dense slot accumulators for [`sweep_tones_into`] — hold them
/// in the caller's scratch arena so warm sweeps allocate nothing.
#[derive(Debug, Default)]
pub struct ToneSweepScratch {
    lo_re: Vec<f64>,
    lo_im: Vec<f64>,
    hi_re: Vec<f64>,
    hi_im: Vec<f64>,
}

impl ToneSweepScratch {
    /// Empty scratch (buffers grow on first use and are then reused).
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, lanes: usize) {
        for buf in [
            &mut self.lo_re,
            &mut self.lo_im,
            &mut self.hi_re,
            &mut self.hi_im,
        ] {
            buf.clear();
            buf.resize(lanes, 0.0);
        }
    }
}

/// When a uniform comb's dense span exceeds this multiple of its band
/// count, the dense-slot kernel would mostly rotate through empty slots;
/// the per-band gap walk is used instead.
const DENSE_SPAN_FACTOR: usize = 4;

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tone_paths_body<V: F64x4>(
    lengths: &[f64],
    gains: &[C64],
    base_hz: f64,
    step_hz: f64,
    tone_offset_hz: f64,
    phase_per_metre_hz: f64,
    scratch: &mut ToneSweepScratch,
    n_quads: usize,
) {
    for (&len, &gain) in lengths.iter().zip(gains) {
        let w = phase_per_metre_hz * len;
        let step = C64::cis(w * step_hz);
        let tone = C64::cis(w * tone_offset_hz);
        let rot0 = C64::cis(w * base_hz);
        let lo = gain * tone.conj();
        let hi = gain * tone;
        // Lane seed: four consecutive comb slots of this path.
        let r1 = rot0 * step;
        let r2 = r1 * step;
        let r3 = r2 * step;
        let mut rot = Cx4::<V> {
            re: V::load(&[rot0.re, r1.re, r2.re, r3.re]),
            im: V::load(&[rot0.im, r1.im, r2.im, r3.im]),
        };
        let s2 = step * step;
        let s4 = s2 * s2;
        let step4 = Cx4::<V>::broadcast(s4.re, s4.im);
        let lo4 = Cx4::<V>::broadcast(lo.re, lo.im);
        let hi4 = Cx4::<V>::broadcast(hi.re, hi.im);
        for q in 0..n_quads {
            let at = q * 4;
            let lo_acc = Cx4 {
                re: V::load(&scratch.lo_re[at..]),
                im: V::load(&scratch.lo_im[at..]),
            };
            let hi_acc = Cx4 {
                re: V::load(&scratch.hi_re[at..]),
                im: V::load(&scratch.hi_im[at..]),
            };
            let lo_next = lo_acc.add(lo4.mul(rot));
            let hi_next = hi_acc.add(hi4.mul(rot));
            lo_next.re.store(&mut scratch.lo_re[at..]);
            lo_next.im.store(&mut scratch.lo_im[at..]);
            hi_next.re.store(&mut scratch.hi_re[at..]);
            hi_next.im.store(&mut scratch.hi_im[at..]);
            rot = rot.mul(step4);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn tone_paths_scalar(
    lengths: &[f64],
    gains: &[C64],
    base_hz: f64,
    step_hz: f64,
    tone_offset_hz: f64,
    phase_per_metre_hz: f64,
    scratch: &mut ToneSweepScratch,
    n_quads: usize,
) {
    tone_paths_body::<ScalarX4>(
        lengths,
        gains,
        base_hz,
        step_hz,
        tone_offset_hz,
        phase_per_metre_hz,
        scratch,
        n_quads,
    );
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn tone_paths_avx2(
    lengths: &[f64],
    gains: &[C64],
    base_hz: f64,
    step_hz: f64,
    tone_offset_hz: f64,
    phase_per_metre_hz: f64,
    scratch: &mut ToneSweepScratch,
    n_quads: usize,
) {
    tone_paths_body::<simd::AvxX4>(
        lengths,
        gains,
        base_hz,
        step_hz,
        tone_offset_hz,
        phase_per_metre_hz,
        scratch,
        n_quads,
    );
}

/// [`sweep_tones_into`] on an explicit vector level (for the dispatch
/// equivalence tests).
#[allow(unsafe_code)]
#[allow(clippy::too_many_arguments)]
pub fn sweep_tones_into_at(
    level: SimdLevel,
    plan: &CombPlan,
    tone_offset_hz: f64,
    phase_per_metre_hz: f64,
    lengths: &[f64],
    gains: &[C64],
    scratch: &mut ToneSweepScratch,
    out: &mut [[C64; 2]],
) {
    assert_eq!(lengths.len(), gains.len(), "path SoA arrays must match");
    assert_eq!(
        out.len(),
        plan.n_bands(),
        "out must hold one entry per band"
    );
    for v in out.iter_mut() {
        *v = [complex::ZERO; 2];
    }
    if !plan.is_uniform_comb() {
        // Off-comb (or degenerate) bands: exact per-band `cis`.
        for (&len, &gain) in lengths.iter().zip(gains) {
            let w = phase_per_metre_hz * len;
            for (k, &f) in plan.freqs.iter().enumerate() {
                let slot = &mut out[plan.order[k]];
                slot[0] += gain * C64::cis(w * (f - tone_offset_hz));
                slot[1] += gain * C64::cis(w * (f + tone_offset_hz));
            }
        }
        return;
    }
    let span = plan.span();
    if span > DENSE_SPAN_FACTOR * plan.n_bands().max(1) {
        // Too sparse for dense lanes: walk the gaps per path instead.
        for (&len, &gain) in lengths.iter().zip(gains) {
            let w = phase_per_metre_hz * len;
            let step = C64::cis(w * plan.step_hz);
            let tone = C64::cis(w * tone_offset_hz);
            let mut rot = C64::cis(w * plan.base_hz);
            let lo = gain * tone.conj();
            let hi = gain * tone;
            for (slot, &gap) in plan.gaps.iter().enumerate() {
                for _ in 0..gap {
                    rot *= step;
                }
                let o = &mut out[plan.order[slot]];
                o[0] += lo * rot;
                o[1] += hi * rot;
            }
        }
        return;
    }
    let n_quads = span.div_ceil(4);
    scratch.reset(n_quads * 4);
    match level {
        SimdLevel::Scalar => tone_paths_scalar(
            lengths,
            gains,
            plan.base_hz,
            plan.step_hz,
            tone_offset_hz,
            phase_per_metre_hz,
            scratch,
            n_quads,
        ),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `SimdLevel::Avx2` is only constructed behind a runtime
        // `is_x86_feature_detected!("avx2")` check (see `bloc_num::simd`).
        SimdLevel::Avx2 => unsafe {
            tone_paths_avx2(
                lengths,
                gains,
                plan.base_hz,
                plan.step_hz,
                tone_offset_hz,
                phase_per_metre_hz,
                scratch,
                n_quads,
            )
        },
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2 => tone_paths_scalar(
            lengths,
            gains,
            plan.base_hz,
            plan.step_hz,
            tone_offset_hz,
            phase_per_metre_hz,
            scratch,
            n_quads,
        ),
    }
    // Scatter dense slots back to the caller's sounding order (duplicate
    // frequencies land on the same dense slot and get identical values).
    for (k, &slot) in plan.slots.iter().enumerate() {
        let d = slot as usize;
        out[plan.order[k]] = [
            C64::new(scratch.lo_re[d], scratch.lo_im[d]),
            C64::new(scratch.hi_re[d], scratch.hi_im[d]),
        ];
    }
}

/// The vector levels this host can actually execute — what equivalence
/// suites iterate over so dispatch-path tests never construct a level
/// the CPU lacks (constructing [`SimdLevel::Avx2`] elsewhere is sound
/// only behind the same detection).
pub fn levels_to_test() -> Vec<SimdLevel> {
    let mut levels = vec![SimdLevel::Scalar];
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        levels.push(SimdLevel::Avx2);
    }
    levels
}

/// Evaluates the two GFSK tone channels `[h(f−δ), h(f+δ)]` of every band
/// for a whole path set (Eq. 2 with the geometry hoisted out): lanes are
/// four consecutive dense comb slots, every path's rotation chain
/// advances four slots per complex multiply, and the dense accumulators
/// scatter back to sounding order. `phase_per_metre_hz` is the phase
/// slope `w/d` (`bloc-chan` passes `−2π/c`).
pub fn sweep_tones_into(
    plan: &CombPlan,
    tone_offset_hz: f64,
    phase_per_metre_hz: f64,
    lengths: &[f64],
    gains: &[C64],
    scratch: &mut ToneSweepScratch,
    out: &mut [[C64; 2]],
) {
    sweep_tones_into_at(
        simd::active_level(),
        plan,
        tone_offset_hz,
        phase_per_metre_hz,
        lengths,
        gains,
        scratch,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn rand_unit(seed: u64) -> f64 {
        (mix(seed) >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn comb_plan_detects_the_ble_comb() {
        let freqs: Vec<f64> = (0..10).map(|k| 2.402e9 + 2e6 * k as f64).collect();
        let plan = CombPlan::build(&freqs);
        assert!(plan.is_uniform_comb());
        assert!(plan.is_dense());
        assert_eq!(plan.base_hz, 2.402e9);
        assert_eq!(plan.step_hz, 2e6);
        assert_eq!(plan.gaps[0], 0);
        assert!(plan.gaps[1..].iter().all(|&g| g == 1));
        assert_eq!(plan.span(), 10);
    }

    #[test]
    fn comb_plan_sorts_and_rejects_non_combs() {
        let freqs = [2.410e9, 2.402e9, 2.416e9];
        let plan = CombPlan::build(&freqs);
        assert_eq!(plan.order, vec![1, 0, 2]);
        // 8 and 6 MHz adjacent gaps: 6 MHz does not divide 8 MHz.
        assert!(!plan.is_uniform_comb());
    }

    #[test]
    fn comb_plan_multi_slot_gaps() {
        let plan = CombPlan::build(&[2.402e9, 2.404e9, 2.412e9]);
        assert!(plan.is_uniform_comb());
        assert!(!plan.is_dense());
        assert_eq!(plan.gaps, vec![0, 1, 4]);
        assert_eq!(plan.slots, vec![0, 1, 5]);
        assert_eq!(plan.span(), 6);
    }

    #[test]
    fn comb_plan_degenerate_sizes() {
        assert!(!CombPlan::build(&[]).is_uniform_comb());
        let one = CombPlan::build(&[2.44e9]);
        assert!(!one.is_uniform_comb());
        assert_eq!(one.gaps, vec![0]);
        assert_eq!(one.base_hz, 2.44e9);
        // Duplicates of one frequency are degenerate too.
        assert!(!CombPlan::build(&[2.44e9, 2.44e9]).is_uniform_comb());
    }

    /// A randomized likelihood fixture: `cells` cells × `n_ant` antennas
    /// over the BLE comb, with the reference value computed per cell by
    /// naive per-band `cis`.
    struct Fixture {
        sweep_tables: (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>),
        alpha: (Vec<f64>, Vec<f64>),
        n_lanes: usize,
        n_ant: usize,
        gaps: Vec<u32>,
        freqs: Vec<f64>,
        deltas: Vec<f64>,
        base_hz: f64,
        step_hz: f64,
    }

    fn fixture(seed: u64, cells: usize, n_ant: usize, nb: usize) -> Fixture {
        let n_lanes = n_ant.div_ceil(4) * 4;
        let base_hz = 2.402e9;
        let step_hz = 2e6;
        let freqs: Vec<f64> = (0..nb).map(|k| base_hz + step_hz * k as f64).collect();
        let gaps: Vec<u32> = (0..nb).map(|k| u32::from(k > 0)).collect();
        let tau_over_c = std::f64::consts::TAU / 299_792_458.0;
        let mut deltas = vec![0.0; cells * n_lanes];
        let (mut sre, mut sim) = (vec![1.0; cells * n_lanes], vec![0.0; cells * n_lanes]);
        let (mut tre, mut tim) = (vec![1.0; cells * n_lanes], vec![0.0; cells * n_lanes]);
        for c in 0..cells {
            for j in 0..n_ant {
                let d = rand_unit(seed ^ (c * 131 + j) as u64) * 20.0 - 10.0;
                let k = c * n_lanes + j;
                deltas[k] = d;
                let seed_p = C64::cis(tau_over_c * d * base_hz);
                let step_p = C64::cis(tau_over_c * d * step_hz);
                sre[k] = seed_p.re;
                sim[k] = seed_p.im;
                tre[k] = step_p.re;
                tim[k] = step_p.im;
            }
        }
        let mut are = vec![0.0; nb * n_lanes];
        let mut aim = vec![0.0; nb * n_lanes];
        for s in 0..nb {
            for j in 0..n_ant {
                are[s * n_lanes + j] = rand_unit(seed ^ (s * 977 + j + 3) as u64) * 2.0 - 1.0;
                aim[s * n_lanes + j] = rand_unit(seed ^ (s * 977 + j + 71) as u64) * 2.0 - 1.0;
            }
        }
        Fixture {
            sweep_tables: (sre, sim, tre, tim),
            alpha: (are, aim),
            n_lanes,
            n_ant,
            gaps,
            freqs,
            deltas,
            base_hz,
            step_hz,
        }
    }

    impl Fixture {
        fn cell_sweep(&self) -> CellSweep<'_> {
            CellSweep {
                seed_re: &self.sweep_tables.0,
                seed_im: &self.sweep_tables.1,
                step_re: &self.sweep_tables.2,
                step_im: &self.sweep_tables.3,
                alpha_re: &self.alpha.0,
                alpha_im: &self.alpha.1,
                n_lanes: self.n_lanes,
                gaps: &self.gaps,
            }
        }

        /// Naive per-(cell, antenna, band) `cis` reference.
        fn reference(&self, combine: Combine, cell: usize) -> f64 {
            let tau_over_c = std::f64::consts::TAU / 299_792_458.0;
            let mut coh = complex::ZERO;
            let mut non = 0.0;
            for j in 0..self.n_ant {
                let d = self.deltas[cell * self.n_lanes + j];
                let mut acc = complex::ZERO;
                for (s, &f) in self.freqs.iter().enumerate() {
                    let a = C64::new(
                        self.alpha.0[s * self.n_lanes + j],
                        self.alpha.1[s * self.n_lanes + j],
                    );
                    acc += a * C64::cis(tau_over_c * d * f);
                }
                coh += acc;
                non += acc.abs();
            }
            match combine {
                Combine::Coherent => coh.abs(),
                Combine::Noncoherent => non,
                Combine::Hybrid => coh.abs() + 0.5 * non,
            }
        }
    }

    #[test]
    fn comb_cells_match_reference_for_all_combinings() {
        let fx = fixture(11, 40, 4, 37);
        let sweep = fx.cell_sweep();
        for combine in [Combine::Coherent, Combine::Noncoherent, Combine::Hybrid] {
            let mut out = vec![0.0; 40];
            write_comb_cells(&sweep, combine, 0, &mut out);
            for (cell, &got) in out.iter().enumerate() {
                let want = fx.reference(combine, cell);
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "cell {cell} {combine:?}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn comb_cells_handle_non_multiple_of_four_antennas() {
        for n_ant in [1, 2, 3, 5, 6] {
            let fx = fixture(n_ant as u64 * 7 + 1, 12, n_ant, 21);
            let mut out = vec![0.0; 12];
            write_comb_cells(&fx.cell_sweep(), Combine::Hybrid, 0, &mut out);
            for (cell, &got) in out.iter().enumerate() {
                let want = fx.reference(Combine::Hybrid, cell);
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "n_ant {n_ant} cell {cell}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn dispatch_paths_are_bit_identical() {
        let levels = levels_to_test();
        let fx = fixture(23, 64, 4, 37);
        let mut reference: Option<Vec<u64>> = None;
        for &level in &levels {
            let mut out = vec![0.0; 64];
            write_comb_cells_at(level, &fx.cell_sweep(), Combine::Hybrid, 0, &mut out);
            let bits: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(want) => assert_eq!(&bits, want, "level {level:?} diverged"),
            }
        }
    }

    #[test]
    fn offcomb_cells_match_reference() {
        let fx = fixture(31, 20, 4, 15);
        let off = OffCombSweep {
            delta: &fx.deltas,
            alpha_re: &fx.alpha.0,
            alpha_im: &fx.alpha.1,
            n_lanes: fx.n_lanes,
            freqs: &fx.freqs,
            phase_per_hz: std::f64::consts::TAU / 299_792_458.0,
        };
        let mut out = vec![0.0; 20];
        write_offcomb_cells(&off, Combine::Hybrid, 0, &mut out);
        for (cell, &got) in out.iter().enumerate() {
            let want = fx.reference(Combine::Hybrid, cell);
            assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "cell {cell}: {got} vs {want}"
            );
        }
        let _ = fx.base_hz + fx.step_hz; // fields exercised elsewhere
    }

    fn tone_reference(
        lengths: &[f64],
        gains: &[C64],
        freqs: &[f64],
        tone: f64,
        w_per_m: f64,
    ) -> Vec<[C64; 2]> {
        freqs
            .iter()
            .map(|&f| {
                let mut lo = complex::ZERO;
                let mut hi = complex::ZERO;
                for (&len, &g) in lengths.iter().zip(gains) {
                    lo += g * C64::cis(w_per_m * len * (f - tone));
                    hi += g * C64::cis(w_per_m * len * (f + tone));
                }
                [lo, hi]
            })
            .collect()
    }

    fn tone_fixture(seed: u64, n_paths: usize) -> (Vec<f64>, Vec<C64>) {
        let lengths: Vec<f64> = (0..n_paths)
            .map(|p| 1.0 + rand_unit(seed ^ p as u64) * 30.0)
            .collect();
        let gains: Vec<C64> = (0..n_paths)
            .map(|p| {
                C64::new(
                    rand_unit(seed ^ (p + 100) as u64) * 2.0 - 1.0,
                    rand_unit(seed ^ (p + 200) as u64) * 2.0 - 1.0,
                )
            })
            .collect();
        (lengths, gains)
    }

    #[test]
    fn tone_sweep_matches_per_band_cis() {
        let (lengths, gains) = tone_fixture(5, 24);
        // Sounding order shuffled, with a duplicate channel.
        let freqs = [2.426e9, 2.402e9, 2.480e9, 2.402e9, 2.404e9];
        let plan = CombPlan::build(&freqs);
        assert!(plan.is_uniform_comb());
        let w = -std::f64::consts::TAU / 299_792_458.0;
        let mut scratch = ToneSweepScratch::new();
        let mut out = vec![[complex::ZERO; 2]; freqs.len()];
        sweep_tones_into(&plan, 250e3, w, &lengths, &gains, &mut scratch, &mut out);
        let want = tone_reference(&lengths, &gains, &freqs, 250e3, w);
        let scale: f64 = want
            .iter()
            .flatten()
            .map(|h| h.abs())
            .fold(f64::MIN_POSITIVE, f64::max);
        for (k, (got, want)) in out.iter().zip(&want).enumerate() {
            for t in 0..2 {
                assert!(
                    (got[t] - want[t]).abs() <= 1e-12 * scale,
                    "band {k} tone {t}: {:?} vs {:?}",
                    got[t],
                    want[t]
                );
            }
        }
        assert_eq!(out[1], out[3], "duplicate channels get identical sweeps");
    }

    #[test]
    fn tone_sweep_off_comb_and_degenerate_fall_back() {
        let (lengths, gains) = tone_fixture(9, 7);
        let w = -std::f64::consts::TAU / 299_792_458.0;
        for freqs in [
            vec![2.402e9, 2.402e9 + 1.37e6, 2.402e9 + 3.91e6],
            vec![],
            vec![2.44e9],
            vec![2.44e9, 2.44e9],
        ] {
            let plan = CombPlan::build(&freqs);
            let mut scratch = ToneSweepScratch::new();
            let mut out = vec![[complex::ZERO; 2]; freqs.len()];
            sweep_tones_into(&plan, 250e3, w, &lengths, &gains, &mut scratch, &mut out);
            let want = tone_reference(&lengths, &gains, &freqs, 250e3, w);
            for (k, (got, want)) in out.iter().zip(&want).enumerate() {
                for t in 0..2 {
                    assert!(
                        (got[t] - want[t]).abs() <= 1e-9 * want[t].abs().max(1e-12),
                        "band {k} tone {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn tone_sweep_sparse_comb_uses_gap_walk_and_matches() {
        let (lengths, gains) = tone_fixture(13, 11);
        // Uniform 2 MHz comb but very sparse: span ≫ 4 × bands.
        let freqs = [2.402e9, 2.404e9, 2.480e9];
        let plan = CombPlan::build(&freqs);
        assert!(plan.is_uniform_comb());
        assert!(plan.span() > DENSE_SPAN_FACTOR * plan.n_bands());
        let w = -std::f64::consts::TAU / 299_792_458.0;
        let mut scratch = ToneSweepScratch::new();
        let mut out = vec![[complex::ZERO; 2]; freqs.len()];
        sweep_tones_into(&plan, 250e3, w, &lengths, &gains, &mut scratch, &mut out);
        let want = tone_reference(&lengths, &gains, &freqs, 250e3, w);
        for (k, (got, want)) in out.iter().zip(&want).enumerate() {
            for t in 0..2 {
                assert!(
                    (got[t] - want[t]).abs() <= 1e-12 * want[t].abs().max(1e-12),
                    "band {k} tone {t}"
                );
            }
        }
    }

    #[test]
    fn tone_sweep_dispatch_paths_are_bit_identical() {
        let (lengths, gains) = tone_fixture(17, 40);
        let freqs: Vec<f64> = (0..37).map(|k| 2.402e9 + 2e6 * k as f64).collect();
        let plan = CombPlan::build(&freqs);
        let w = -std::f64::consts::TAU / 299_792_458.0;
        let mut reference: Option<Vec<[C64; 2]>> = None;
        for &level in &levels_to_test() {
            let mut scratch = ToneSweepScratch::new();
            let mut out = vec![[complex::ZERO; 2]; freqs.len()];
            sweep_tones_into_at(
                level,
                &plan,
                250e3,
                w,
                &lengths,
                &gains,
                &mut scratch,
                &mut out,
            );
            match &reference {
                None => reference = Some(out),
                Some(want) => {
                    for (k, (got, want)) in out.iter().zip(want).enumerate() {
                        for t in 0..2 {
                            assert_eq!(
                                got[t].re.to_bits(),
                                want[t].re.to_bits(),
                                "band {k} tone {t} re ({level:?})"
                            );
                            assert_eq!(
                                got[t].im.to_bits(),
                                want[t].im.to_bits(),
                                "band {k} tone {t} im ({level:?})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tone_scratch_reuses_buffers() {
        let (lengths, gains) = tone_fixture(21, 5);
        let freqs: Vec<f64> = (0..37).map(|k| 2.402e9 + 2e6 * k as f64).collect();
        let plan = CombPlan::build(&freqs);
        let w = -std::f64::consts::TAU / 299_792_458.0;
        let mut scratch = ToneSweepScratch::new();
        let mut out = vec![[complex::ZERO; 2]; freqs.len()];
        sweep_tones_into(&plan, 250e3, w, &lengths, &gains, &mut scratch, &mut out);
        let cap = scratch.lo_re.capacity();
        let first = out.clone();
        sweep_tones_into(&plan, 250e3, w, &lengths, &gains, &mut scratch, &mut out);
        assert_eq!(scratch.lo_re.capacity(), cap, "warm sweep must not regrow");
        assert_eq!(out, first, "repeat sweep is bit-identical");
    }
}
