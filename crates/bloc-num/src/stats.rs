//! Descriptive statistics for the evaluation harness.
//!
//! Everything the paper's evaluation section reports — median errors,
//! 90th-percentile errors, CDFs (Figs. 9, 12), standard-deviation error bars
//! (Fig. 10) and the per-location RMSE map (Fig. 13) — is computed with the
//! functions in this module.

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; `NaN` for an empty slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    (xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Root-mean-square of a sample (used for the Fig. 13 per-cell RMSE map).
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|&x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// `p`-th percentile (0–100) with linear interpolation between order
/// statistics; `NaN` for an empty slice. Not stable-sorted against NaNs:
/// the caller must pass finite data.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("percentile input must be finite"));
    percentile_sorted(&v, p)
}

/// Percentile on data already sorted ascending.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// One point of an empirical CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CdfPoint {
    /// Sample value (for us: localization error, metres).
    pub value: f64,
    /// Cumulative probability in `(0, 1]`.
    pub probability: f64,
}

/// An empirical cumulative distribution function over a finite sample.
///
/// This is the object each CDF figure in the paper (Figs. 9a–c, 12) plots.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample; the sample must be finite.
    pub fn new(mut xs: Vec<f64>) -> Self {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("ECDF input must be finite"));
        Self { sorted: xs }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Quantile function: the smallest sample value `v` with
    /// `P(X ≤ v) ≥ q` (`q` in `(0, 1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let n = self.sorted.len();
        let k = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[k - 1]
    }

    /// Median via interpolated percentile (matches [`median`]).
    pub fn median(&self) -> f64 {
        percentile_sorted(&self.sorted, 50.0)
    }

    /// Interpolated percentile (0–100).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_sorted(&self.sorted, p)
    }

    /// All step points of the ECDF, ready to print as a figure series.
    pub fn points(&self) -> Vec<CdfPoint> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| CdfPoint {
                value: v,
                probability: (i + 1) as f64 / n,
            })
            .collect()
    }

    /// Samples the ECDF at `bins` evenly-spaced values across `[lo, hi]` —
    /// the compact form the figure binaries print.
    pub fn sample_curve(&self, lo: f64, hi: f64, bins: usize) -> Vec<CdfPoint> {
        (0..bins)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (bins.max(2) - 1) as f64;
                CdfPoint {
                    value: x,
                    probability: self.eval(x),
                }
            })
            .collect()
    }

    /// Immutable view of the sorted sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

/// Online accumulator for mean/variance (Welford) — used by the parallel
/// sweep runner to aggregate errors without storing every sample twice.
#[derive(Debug, Clone, Copy, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Running population variance (`NaN` when empty).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Running population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.mean += d * other.n as f64 / n as f64;
        self.n = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 25.0), 2.5);
        assert_eq!(percentile(&xs, 90.0), 9.0);
        assert_eq!(percentile(&xs, 0.0), 0.0);
        assert_eq!(percentile(&xs, 100.0), 10.0);
    }

    #[test]
    fn empty_inputs_are_nan() {
        assert!(mean(&[]).is_nan());
        assert!(median(&[]).is_nan());
        assert!(std_dev(&[]).is_nan());
        assert!(rms(&[]).is_nan());
    }

    #[test]
    fn ecdf_eval_and_quantile() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(2.0), 0.5);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.quantile(0.5), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
    }

    #[test]
    fn ecdf_points_monotone() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        let pts = e.points();
        assert_eq!(pts.len(), 3);
        for w in pts.windows(2) {
            assert!(w[1].value >= w[0].value);
            assert!(w[1].probability > w[0].probability);
        }
        assert_eq!(pts.last().unwrap().probability, 1.0);
    }

    #[test]
    fn ecdf_sample_curve_covers_range() {
        let e = Ecdf::new(vec![0.5, 1.5, 2.5]);
        let c = e.sample_curve(0.0, 3.0, 7);
        assert_eq!(c.len(), 7);
        assert_eq!(c[0].probability, 0.0);
        assert_eq!(c.last().unwrap().probability, 1.0);
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [1.0, 2.0, 3.5, -1.0, 0.25];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.std_dev() - std_dev(&xs)).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 5.0).collect();
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert!((a.mean() - mean(&xs)).abs() < 1e-12);
        assert!((a.std_dev() - std_dev(&xs)).abs() < 1e-10);
    }

    proptest! {
        #[test]
        fn prop_percentile_within_range(xs in proptest::collection::vec(-100.0..100.0f64, 1..50),
                                        p in 0.0..100.0f64) {
            let v = percentile(&xs, p);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }

        #[test]
        fn prop_ecdf_monotone(xs in proptest::collection::vec(-10.0..10.0f64, 1..40),
                              a in -12.0..12.0f64, b in -12.0..12.0f64) {
            let e = Ecdf::new(xs);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(e.eval(lo) <= e.eval(hi) + 1e-12);
        }

        #[test]
        fn prop_welford_merge_any_split(xs in proptest::collection::vec(-50.0..50.0f64, 2..60),
                                        split in 0usize..60) {
            let split = split.min(xs.len());
            let mut a = Welford::new();
            let mut b = Welford::new();
            for &x in &xs[..split] { a.push(x); }
            for &x in &xs[split..] { b.push(x); }
            a.merge(&b);
            prop_assert!((a.mean() - mean(&xs)).abs() < 1e-9);
            prop_assert!((a.variance() - std_dev(&xs).powi(2)).abs() < 1e-7);
        }
    }
}
