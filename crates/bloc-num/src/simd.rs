//! Hand-rolled 4-wide `f64` SIMD with a runtime-dispatched scalar twin.
//!
//! The workspace's two hot loops — the Eq. 17 likelihood recurrence in
//! `bloc-core` and the Eq. 2 channel sweep in `bloc-chan` — are both
//! complex phasor multiply-add chains over structure-of-arrays data. This
//! module gives them one vector substrate with **no** external
//! dependencies: a [`F64x4`] operations trait with two implementations,
//!
//! * [`ScalarX4`] — plain `[f64; 4]` element-wise arithmetic, compiled for
//!   the baseline target, and
//! * [`AvxX4`] (x86-64 only) — the same operations as explicit AVX2
//!   `__m256d` intrinsics.
//!
//! # Bit-identical dispatch
//!
//! Every kernel in [`crate::sweep`] is written once as a generic body and
//! instantiated for both implementations, and every trait operation is
//! IEEE-754 correctly rounded (`add`/`sub`/`mul`/`sqrt`) or has a fixed,
//! documented reduction order ([`F64x4::hsum`]). Consequently the two
//! dispatch paths produce **bit-identical** results — the equivalence
//! suites assert this, and it is why no result in the workspace depends
//! on which CPU ran it. Fused multiply-add is deliberately never used:
//! FMA contracts the intermediate rounding and would break the
//! scalar/vector identity.
//!
//! # Choosing a path
//!
//! [`active_level`] picks AVX2 when the host supports it, unless the
//! `BLOC_NO_SIMD` environment variable is set (any value) — the scalar
//! leg CI runs under exactly that switch. Kernels that need an explicit
//! path (the equivalence tests) take a [`SimdLevel`] argument instead of
//! consulting the global, so tests never mutate process state.
//!
//! # Safety
//!
//! This is the one module in `bloc-num` that uses `unsafe`: the AVX2
//! intrinsics, plus the `#[target_feature]` kernel twins in
//! [`crate::sweep`]. The containment argument is narrow and checkable:
//! [`AvxX4`] methods are only reachable from kernels that were dispatched
//! through [`active_level`] (or an explicit [`SimdLevel::Avx2`] handed to
//! a test), and [`SimdLevel::Avx2`] is only constructed behind
//! `is_x86_feature_detected!("avx2")`.

#![allow(unsafe_code)]

/// Which vector implementation a kernel should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Plain `[f64; 4]` arithmetic — always available.
    Scalar,
    /// 256-bit AVX2 `__m256d` arithmetic (x86-64 hosts that advertise it).
    Avx2,
}

impl SimdLevel {
    /// A short label for benchmark reports (`"avx2"` / `"scalar"`).
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// The vector level the host should run, computed once: AVX2 when the CPU
/// supports it and `BLOC_NO_SIMD` is not set, scalar otherwise.
pub fn active_level() -> SimdLevel {
    static LEVEL: std::sync::OnceLock<SimdLevel> = std::sync::OnceLock::new();
    *LEVEL.get_or_init(detect_level)
}

fn detect_level() -> SimdLevel {
    if std::env::var_os("BLOC_NO_SIMD").is_some() {
        return SimdLevel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
    }
    SimdLevel::Scalar
}

/// Four `f64` lanes with the operations the sweep kernels need.
///
/// Implementations must be IEEE-754 correctly rounded per lane and must
/// use the exact [`F64x4::hsum`] reduction order, so that any generic
/// kernel instantiated over two implementations produces bit-identical
/// results (the dispatch-equivalence contract of this module).
pub trait F64x4: Copy {
    /// All four lanes set to `v`.
    fn splat(v: f64) -> Self;
    /// Loads lanes from `s[0..4]` (panics if shorter).
    fn load(s: &[f64]) -> Self;
    /// Stores lanes into `out[0..4]` (panics if shorter).
    fn store(self, out: &mut [f64]);
    /// Lane-wise sum.
    fn add(self, o: Self) -> Self;
    /// Lane-wise difference.
    fn sub(self, o: Self) -> Self;
    /// Lane-wise product.
    fn mul(self, o: Self) -> Self;
    /// Lane-wise square root.
    fn sqrt(self) -> Self;
    /// Horizontal sum with the fixed association `(l0 + l2) + (l1 + l3)`
    /// — the order a 256-bit high/low fold produces naturally, adopted by
    /// the scalar twin so both paths agree bitwise.
    fn hsum(self) -> f64;
}

/// The scalar fallback: `[f64; 4]` element-wise arithmetic.
#[derive(Debug, Clone, Copy)]
pub struct ScalarX4([f64; 4]);

impl F64x4 for ScalarX4 {
    #[inline(always)]
    fn splat(v: f64) -> Self {
        ScalarX4([v; 4])
    }
    #[inline(always)]
    fn load(s: &[f64]) -> Self {
        ScalarX4([s[0], s[1], s[2], s[3]])
    }
    #[inline(always)]
    fn store(self, out: &mut [f64]) {
        out[..4].copy_from_slice(&self.0);
    }
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        ScalarX4([
            self.0[0] + o.0[0],
            self.0[1] + o.0[1],
            self.0[2] + o.0[2],
            self.0[3] + o.0[3],
        ])
    }
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        ScalarX4([
            self.0[0] - o.0[0],
            self.0[1] - o.0[1],
            self.0[2] - o.0[2],
            self.0[3] - o.0[3],
        ])
    }
    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        ScalarX4([
            self.0[0] * o.0[0],
            self.0[1] * o.0[1],
            self.0[2] * o.0[2],
            self.0[3] * o.0[3],
        ])
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        ScalarX4([
            self.0[0].sqrt(),
            self.0[1].sqrt(),
            self.0[2].sqrt(),
            self.0[3].sqrt(),
        ])
    }
    #[inline(always)]
    fn hsum(self) -> f64 {
        (self.0[0] + self.0[2]) + (self.0[1] + self.0[3])
    }
}

/// The AVX2 implementation: one `__m256d` per value.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct AvxX4(std::arch::x86_64::__m256d);

// SAFETY CONTRACT (module-level): every intrinsic below is only executed
// on hosts where AVX2 was detected — callers reach `AvxX4` exclusively
// through `SimdLevel::Avx2`, which `detect_level` only constructs behind
// `is_x86_feature_detected!("avx2")` (tests passing an explicit level
// inherit the same check through `sweep::levels_to_test`). The methods
// are `#[inline(always)]` so they fold into the `#[target_feature]`
// kernel twins.
#[cfg(target_arch = "x86_64")]
impl F64x4 for AvxX4 {
    #[inline(always)]
    fn splat(v: f64) -> Self {
        // SAFETY: see module safety contract above.
        unsafe { AvxX4(std::arch::x86_64::_mm256_set1_pd(v)) }
    }
    #[inline(always)]
    fn load(s: &[f64]) -> Self {
        assert!(s.len() >= 4);
        // SAFETY: length checked above; see module safety contract.
        unsafe { AvxX4(std::arch::x86_64::_mm256_loadu_pd(s.as_ptr())) }
    }
    #[inline(always)]
    fn store(self, out: &mut [f64]) {
        assert!(out.len() >= 4);
        // SAFETY: length checked above; see module safety contract.
        unsafe { std::arch::x86_64::_mm256_storeu_pd(out.as_mut_ptr(), self.0) }
    }
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        // SAFETY: see module safety contract.
        unsafe { AvxX4(std::arch::x86_64::_mm256_add_pd(self.0, o.0)) }
    }
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        // SAFETY: see module safety contract.
        unsafe { AvxX4(std::arch::x86_64::_mm256_sub_pd(self.0, o.0)) }
    }
    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        // SAFETY: see module safety contract.
        unsafe { AvxX4(std::arch::x86_64::_mm256_mul_pd(self.0, o.0)) }
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        // SAFETY: see module safety contract.
        unsafe { AvxX4(std::arch::x86_64::_mm256_sqrt_pd(self.0)) }
    }
    #[inline(always)]
    fn hsum(self) -> f64 {
        // SAFETY: see module safety contract.
        unsafe {
            use std::arch::x86_64::*;
            let lo = _mm256_castpd256_pd128(self.0); // [l0, l1]
            let hi = _mm256_extractf128_pd::<1>(self.0); // [l2, l3]
            let s = _mm_add_pd(lo, hi); // [l0+l2, l1+l3]
            let odd = _mm_unpackhi_pd(s, s);
            _mm_cvtsd_f64(_mm_add_sd(s, odd)) // (l0+l2)+(l1+l3)
        }
    }
}

/// A 4-lane complex value in split (structure-of-arrays) form.
#[derive(Debug, Clone, Copy)]
pub struct Cx4<V: F64x4> {
    /// Real lanes.
    pub re: V,
    /// Imaginary lanes.
    pub im: V,
}

impl<V: F64x4> Cx4<V> {
    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        Cx4 {
            re: V::splat(0.0),
            im: V::splat(0.0),
        }
    }

    /// One complex value broadcast across all four lanes.
    #[inline(always)]
    pub fn broadcast(re: f64, im: f64) -> Self {
        Cx4 {
            re: V::splat(re),
            im: V::splat(im),
        }
    }

    /// Lane-wise complex product, expanded with separate multiplies and
    /// adds (never FMA — see the module docs on bit-identity).
    ///
    /// Named like the [`F64x4`] element ops rather than via `std::ops`:
    /// operator impls would force `V: Copy + …` bounds on every generic
    /// kernel signature for no call-site gain.
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn mul(self, o: Self) -> Self {
        Cx4 {
            re: self.re.mul(o.re).sub(self.im.mul(o.im)),
            im: self.re.mul(o.im).add(self.im.mul(o.re)),
        }
    }

    /// Lane-wise complex sum.
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn add(self, o: Self) -> Self {
        Cx4 {
            re: self.re.add(o.re),
            im: self.im.add(o.im),
        }
    }

    /// Lane-wise magnitude `sqrt(re² + im²)`.
    #[inline(always)]
    pub fn abs(self) -> V {
        self.re.mul(self.re).add(self.im.mul(self.im)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn rand_f64(seed: u64) -> f64 {
        (mix(seed) >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
    }

    fn check_ops<V: F64x4>(seed: u64) -> [u64; 6] {
        let a: Vec<f64> = (0..4).map(|k| rand_f64(seed ^ k)).collect();
        let b: Vec<f64> = (0..4).map(|k| rand_f64(seed ^ (k + 7))).collect();
        let va = V::load(&a);
        let vb = V::load(&b);
        let mut out = [0.0; 4];
        va.mul(vb).add(va).sub(vb).store(&mut out);
        let abs2 = va.mul(va).add(vb.mul(vb)).sqrt();
        [
            out[0].to_bits(),
            out[1].to_bits(),
            out[2].to_bits(),
            out[3].to_bits(),
            va.hsum().to_bits(),
            abs2.hsum().to_bits(),
        ]
    }

    #[test]
    fn scalar_ops_match_plain_arithmetic() {
        let a = [1.5, -2.25, 0.5, 3.0];
        let v = ScalarX4::load(&a);
        assert_eq!(v.hsum(), (1.5 + 0.5) + (-2.25 + 3.0));
        let mut out = [0.0; 4];
        v.mul(v).store(&mut out);
        assert_eq!(out, [2.25, 5.0625, 0.25, 9.0]);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_is_bit_identical_to_scalar() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        for seed in 0..256u64 {
            assert_eq!(
                check_ops::<ScalarX4>(seed),
                check_ops::<AvxX4>(seed),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn active_level_is_stable() {
        assert_eq!(active_level(), active_level());
    }

    #[test]
    fn complex_mul_matches_expansion() {
        let a = Cx4::<ScalarX4>::broadcast(1.25, -0.5);
        let b = Cx4::<ScalarX4>::broadcast(0.75, 2.0);
        let p = a.mul(b);
        let mut re = [0.0; 4];
        let mut im = [0.0; 4];
        p.re.store(&mut re);
        p.im.store(&mut im);
        assert_eq!(re[0], 1.25 * 0.75 - (-0.5) * 2.0);
        assert_eq!(im[0], 1.25 * 2.0 + (-0.5) * 0.75);
    }
}
