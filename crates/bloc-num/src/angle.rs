//! Angle hygiene: wrapping, unwrapping and conversions.
//!
//! Channel phases are only ever observed modulo 2π; both the phase-stability
//! microbenchmark (paper Fig. 8a) and the linear-phase-versus-subband check
//! (Fig. 8b) need a careful 1-D phase unwrap, and AoA work needs principled
//! wrapping.

use std::f64::consts::PI;

/// Two π, for readability in phase arithmetic.
pub const TAU: f64 = 2.0 * PI;

/// Wraps an angle to `(−π, π]`.
#[inline]
pub fn wrap_to_pi(theta: f64) -> f64 {
    let mut t = theta.rem_euclid(TAU);
    if t > PI {
        t -= TAU;
    }
    t
}

/// Wraps an angle to `[0, 2π)`.
#[inline]
pub fn wrap_to_tau(theta: f64) -> f64 {
    theta.rem_euclid(TAU)
}

/// Smallest signed difference `a − b` wrapped to `(−π, π]`.
#[inline]
pub fn angle_diff(a: f64, b: f64) -> f64 {
    wrap_to_pi(a - b)
}

/// Degrees → radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * PI / 180.0
}

/// Radians → degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / PI
}

/// Unwraps a phase sequence in place: successive samples are adjusted by
/// multiples of 2π so that no step exceeds π in magnitude.
///
/// This mirrors the classic `unwrap` of numerical environments and is what
/// lets us display the *linear* phase-versus-frequency trend of corrected
/// channels (paper Fig. 8b) without modular jumps.
pub fn unwrap_in_place(phases: &mut [f64]) {
    let mut offset = 0.0;
    for i in 1..phases.len() {
        let raw = phases[i] + offset;
        let prev = phases[i - 1];
        let mut d = raw - prev;
        while d > PI {
            offset -= TAU;
            d -= TAU;
        }
        while d <= -PI {
            offset += TAU;
            d += TAU;
        }
        phases[i] = prev + d;
    }
}

/// Returns an unwrapped copy of a phase sequence.
pub fn unwrap(phases: &[f64]) -> Vec<f64> {
    let mut v = phases.to_vec();
    unwrap_in_place(&mut v);
    v
}

/// Circular mean of a set of angles (radians), the right way to average
/// phases: `atan2(Σ sin, Σ cos)`.
///
/// Used when combining the per-band h₀/h₁ measurements into one channel
/// value per band ("averaging the channel amplitude and channel phase
/// separately", paper §5 preamble).
pub fn circular_mean(angles: &[f64]) -> f64 {
    let (mut s, mut c) = (0.0, 0.0);
    for &a in angles {
        let (si, ci) = a.sin_cos();
        s += si;
        c += ci;
    }
    s.atan2(c)
}

/// Circular variance in `[0, 1]`: 0 for perfectly aligned phases, →1 for
/// uniformly scattered ones. Used by CSI-stability diagnostics.
pub fn circular_variance(angles: &[f64]) -> f64 {
    if angles.is_empty() {
        return 0.0;
    }
    let (mut s, mut c) = (0.0, 0.0);
    for &a in angles {
        let (si, ci) = a.sin_cos();
        s += si;
        c += ci;
    }
    let r = (s * s + c * c).sqrt() / angles.len() as f64;
    1.0 - r
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wrap_examples() {
        assert!((wrap_to_pi(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_to_pi(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_to_pi(0.5) - 0.5).abs() < 1e-15);
        assert!((wrap_to_tau(-0.5) - (TAU - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn diff_is_shortest_arc() {
        assert!((angle_diff(0.1, TAU - 0.1) - 0.2).abs() < 1e-12);
        assert!((angle_diff(TAU - 0.1, 0.1) + 0.2).abs() < 1e-12);
    }

    #[test]
    fn unwrap_recovers_linear_ramp() {
        // A linear phase ramp (the signature of a single dominant path,
        // Fig. 8b) wrapped into (−π, π] must unwrap back to a line.
        let true_phases: Vec<f64> = (0..50).map(|k| 0.9 * k as f64).collect();
        let wrapped: Vec<f64> = true_phases.iter().map(|&p| wrap_to_pi(p)).collect();
        let un = unwrap(&wrapped);
        for (u, t) in un.iter().zip(&true_phases) {
            // Unwrap is only defined up to a global 2π multiple of the start.
            assert!(((u - t) - (un[0] - true_phases[0])).abs() < 1e-9);
        }
    }

    #[test]
    fn circular_mean_handles_wraparound() {
        // Angles straddling the ±π cut: naive mean would give ~0, circular
        // mean must give ~π.
        let m = circular_mean(&[PI - 0.1, -PI + 0.1]);
        assert!((wrap_to_pi(m - PI)).abs() < 1e-9, "mean = {m}");
    }

    #[test]
    fn circular_variance_bounds() {
        assert!(circular_variance(&[1.0, 1.0, 1.0]) < 1e-12);
        let spread = circular_variance(&[0.0, PI / 2.0, PI, 3.0 * PI / 2.0]);
        assert!(spread > 0.99, "uniform four-point spread, var = {spread}");
    }

    proptest! {
        #[test]
        fn prop_wrap_range(t in -100.0..100.0f64) {
            let w = wrap_to_pi(t);
            prop_assert!(w > -PI - 1e-12 && w <= PI + 1e-12);
            // Wrapping preserves the angle modulo 2π.
            prop_assert!(((t - w).rem_euclid(TAU)).min(TAU - (t - w).rem_euclid(TAU)) < 1e-9);
        }

        #[test]
        fn prop_unwrap_steps_bounded(phs in proptest::collection::vec(-50.0..50.0f64, 2..60)) {
            let wrapped: Vec<f64> = phs.iter().map(|&p| wrap_to_pi(p)).collect();
            let un = unwrap(&wrapped);
            for w in un.windows(2) {
                prop_assert!((w[1] - w[0]).abs() <= PI + 1e-9);
            }
        }
    }
}
