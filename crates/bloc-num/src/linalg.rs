//! Small dense linear algebra: 2×2 solves, least squares, bearing-line
//! intersection.
//!
//! The AoA-combining baseline (the paper's comparison system, §7/§8.2)
//! turns one bearing per anchor into a position by intersecting the bearing
//! lines in the least-squares sense; the RSSI baseline trilaterates with a
//! Gauss–Newton step. Both need only the tiny solvers in this module.

use crate::point::P2;

/// Solves the 2×2 system `[[a, b], [c, d]]·x = rhs`.
///
/// Returns `None` when the matrix is singular (determinant below 1e-12 of
/// its scale).
pub fn solve2(a: f64, b: f64, c: f64, d: f64, rhs: P2) -> Option<P2> {
    let det = a * d - b * c;
    let scale = (a.abs() + b.abs() + c.abs() + d.abs()).max(1e-300);
    if det.abs() < 1e-12 * scale * scale {
        return None;
    }
    Some(P2::new(
        (rhs.x * d - rhs.y * b) / det,
        (a * rhs.y - c * rhs.x) / det,
    ))
}

/// A ray in the plane: origin plus unit direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin (an anchor position for AoA).
    pub origin: P2,
    /// Unit direction of the bearing.
    pub dir: P2,
}

impl Ray {
    /// Builds a ray from an origin and an angle from the +x axis.
    pub fn from_angle(origin: P2, theta: f64) -> Self {
        Self {
            origin,
            dir: P2::from_angle(theta),
        }
    }

    /// Squared perpendicular distance from `p` to the ray's supporting line.
    pub fn dist_sq_to_line(&self, p: P2) -> f64 {
        let v = p - self.origin;
        let t = v.cross(self.dir);
        t * t
    }
}

/// Least-squares intersection of a set of bearing lines: the point
/// minimizing the sum of squared perpendicular distances to each line.
///
/// This is the classical AoA triangulation step. Weights let the caller
/// trust confident bearings more (we pass the AoA spectrum peak value).
/// Returns `None` for fewer than two rays or a degenerate (all-parallel)
/// geometry.
pub fn intersect_bearings(rays: &[(Ray, f64)]) -> Option<P2> {
    if rays.len() < 2 {
        return None;
    }
    // For a line through o with unit direction u, the normal projector is
    // N = I − u·uᵀ. Minimize Σ w‖N(p − o)‖² ⇒ (Σ wN)p = Σ wN o.
    let (mut a, mut b, mut d) = (0.0, 0.0, 0.0); // symmetric [[a, b], [b, d]]
    let mut rhs = P2::ORIGIN;
    for &(ray, w) in rays {
        let u = ray.dir;
        let nxx = w * (1.0 - u.x * u.x);
        let nxy = w * (-u.x * u.y);
        let nyy = w * (1.0 - u.y * u.y);
        a += nxx;
        b += nxy;
        d += nyy;
        rhs += P2::new(
            nxx * ray.origin.x + nxy * ray.origin.y,
            nxy * ray.origin.x + nyy * ray.origin.y,
        );
    }
    solve2(a, b, b, d, rhs)
}

/// One Gauss–Newton refinement step for range-based trilateration:
/// given anchors `a_i` and measured ranges `r_i`, improves `p` by
/// linearizing `‖p − a_i‖ − r_i` around `p`.
///
/// Returns the updated point, or `None` when the normal equations are
/// singular (e.g. collinear anchors with the point on the line).
pub fn trilaterate_step(p: P2, anchors_ranges: &[(P2, f64)]) -> Option<P2> {
    // Normal equations JᵀJ Δ = −Jᵀr with J row i = (p − a_i)ᵀ/‖p − a_i‖.
    let (mut a, mut b, mut d) = (0.0, 0.0, 0.0);
    let mut g = P2::ORIGIN;
    for &(anchor, range) in anchors_ranges {
        let v = p - anchor;
        let dist = v.norm().max(1e-9);
        let u = v / dist;
        let resid = dist - range;
        a += u.x * u.x;
        b += u.x * u.y;
        d += u.y * u.y;
        g += u * resid;
    }
    let delta = solve2(a, b, b, d, -g)?;
    Some(p + delta)
}

/// Full trilateration: iterates [`trilaterate_step`] from an initial guess
/// until the update falls below `tol` metres or `max_iter` is reached.
pub fn trilaterate(
    initial: P2,
    anchors_ranges: &[(P2, f64)],
    tol: f64,
    max_iter: usize,
) -> Option<P2> {
    if anchors_ranges.len() < 2 {
        return None;
    }
    let mut p = initial;
    for _ in 0..max_iter {
        let next = trilaterate_step(p, anchors_ranges)?;
        let moved = p.dist(next);
        p = next;
        if moved < tol {
            break;
        }
    }
    Some(p)
}

/// Simple linear regression `y = slope·x + intercept` (used to check the
/// corrected channels' phase is linear in frequency, Fig. 8b).
///
/// Returns `(slope, intercept, r²)`; `None` for fewer than 2 points or a
/// degenerate x spread.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<(f64, f64, f64)> {
    let n = xs.len();
    if n < 2 || n != ys.len() {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let sxx: f64 = xs.iter().map(|&x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    let syy: f64 = ys.iter().map(|&y| (y - my) * (y - my)).sum();
    if sxx < 1e-30 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy < 1e-30 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some((slope, intercept, r2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn solve2_basic() {
        let x = solve2(2.0, 1.0, 1.0, 3.0, P2::new(5.0, 10.0)).unwrap();
        assert!((2.0 * x.x + 1.0 * x.y - 5.0).abs() < 1e-12);
        assert!((1.0 * x.x + 3.0 * x.y - 10.0).abs() < 1e-12);
    }

    #[test]
    fn solve2_singular_is_none() {
        assert!(solve2(1.0, 2.0, 2.0, 4.0, P2::new(1.0, 1.0)).is_none());
    }

    #[test]
    fn bearings_intersect_at_target() {
        let target = P2::new(2.0, 3.0);
        let anchors = [P2::new(0.0, 0.0), P2::new(5.0, 0.0), P2::new(0.0, 6.0)];
        let rays: Vec<(Ray, f64)> = anchors
            .iter()
            .map(|&a| (Ray::from_angle(a, (target - a).angle()), 1.0))
            .collect();
        let p = intersect_bearings(&rays).unwrap();
        assert!(p.dist(target) < 1e-9);
    }

    #[test]
    fn parallel_bearings_are_degenerate() {
        let rays = [
            (Ray::from_angle(P2::new(0.0, 0.0), FRAC_PI_2), 1.0),
            (Ray::from_angle(P2::new(1.0, 0.0), FRAC_PI_2), 1.0),
        ];
        assert!(intersect_bearings(&rays).is_none());
    }

    #[test]
    fn weighting_pulls_toward_trusted_bearing() {
        // Two noisy bearings to a target plus one wildly wrong but
        // down-weighted bearing: the estimate stays near the target.
        let target = P2::new(2.0, 2.0);
        let good1 = Ray::from_angle(P2::new(0.0, 0.0), (target - P2::new(0.0, 0.0)).angle());
        let good2 = Ray::from_angle(P2::new(5.0, 0.0), (target - P2::new(5.0, 0.0)).angle());
        let bad = Ray::from_angle(P2::new(0.0, 5.0), 0.0);
        let p = intersect_bearings(&[(good1, 1.0), (good2, 1.0), (bad, 1e-6)]).unwrap();
        assert!(
            p.dist(target) < 1e-3,
            "estimate {p} should be near {target}"
        );
    }

    #[test]
    fn trilateration_converges() {
        let target = P2::new(1.5, 2.5);
        let anchors = [P2::new(0.0, 0.0), P2::new(5.0, 0.0), P2::new(2.5, 6.0)];
        let ar: Vec<(P2, f64)> = anchors.iter().map(|&a| (a, a.dist(target))).collect();
        let p = trilaterate(P2::new(2.0, 2.0), &ar, 1e-10, 50).unwrap();
        assert!(p.dist(target) < 1e-6);
    }

    #[test]
    fn trilateration_too_few_anchors() {
        assert!(trilaterate(P2::ORIGIN, &[(P2::new(1.0, 0.0), 1.0)], 1e-6, 10).is_none());
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x - 7.0).collect();
        let (m, b, r2) = linear_fit(&xs, &ys).unwrap();
        assert!((m - 3.0).abs() < 1e-12);
        assert!((b + 7.0).abs() < 1e-10);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }

    proptest! {
        #[test]
        fn prop_bearing_intersection_exact(tx in 0.5..5.5f64, ty in 0.5..5.5f64) {
            let target = P2::new(tx, ty);
            let anchors = [P2::new(0.0, -1.0), P2::new(6.0, -1.0), P2::new(6.0, 7.0), P2::new(0.0, 7.0)];
            let rays: Vec<(Ray, f64)> = anchors.iter()
                .map(|&a| (Ray::from_angle(a, (target - a).angle()), 1.0))
                .collect();
            let p = intersect_bearings(&rays).unwrap();
            prop_assert!(p.dist(target) < 1e-6);
        }

        #[test]
        fn prop_trilateration_exact_ranges(tx in 0.5..4.5f64, ty in 0.5..5.5f64) {
            let target = P2::new(tx, ty);
            let anchors = [P2::new(2.5, 0.0), P2::new(5.0, 3.0), P2::new(2.5, 6.0), P2::new(0.0, 3.0)];
            let ar: Vec<(P2, f64)> = anchors.iter().map(|&a| (a, a.dist(target))).collect();
            let p = trilaterate(P2::new(2.5, 3.0), &ar, 1e-12, 100).unwrap();
            prop_assert!(p.dist(target) < 1e-5);
        }
    }
}
