//! 2-D points and vectors in metric space.
//!
//! The testbed room, anchors, antennas, reflectors and the tag all live in a
//! 2-D plane (the paper's evaluation is planar: anchors at the edge midpoints
//! of a 5 m × 6 m room, Fig. 7c). `P2` doubles as point and vector.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point (or vector) in the 2-D plane, metres.
#[derive(Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct P2 {
    /// X coordinate, metres.
    pub x: f64,
    /// Y coordinate, metres.
    pub y: f64,
}

impl P2 {
    /// The origin.
    pub const ORIGIN: P2 = P2 { x: 0.0, y: 0.0 };

    /// Builds a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`, metres.
    #[inline]
    pub fn dist(self, other: P2) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared distance (no sqrt).
    #[inline]
    pub fn dist_sq(self, other: P2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length, metres.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: P2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    #[inline]
    pub fn cross(self, other: P2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the direction of `self`; zero vector maps to zero.
    #[inline]
    pub fn normalize(self) -> P2 {
        let n = self.norm();
        if n == 0.0 {
            P2::ORIGIN
        } else {
            self / n
        }
    }

    /// The vector rotated 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> P2 {
        P2::new(-self.y, self.x)
    }

    /// Unit vector at angle `theta` radians from the +x axis.
    #[inline]
    pub fn from_angle(theta: f64) -> P2 {
        let (s, c) = theta.sin_cos();
        P2::new(c, s)
    }

    /// Angle of the vector from the +x axis, radians in (−π, π].
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Linear interpolation: `self + t · (other − self)`.
    #[inline]
    pub fn lerp(self, other: P2, t: f64) -> P2 {
        self + (other - self) * t
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: P2) -> P2 {
        self.lerp(other, 0.5)
    }
}

impl fmt::Debug for P2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Display for P2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for P2 {
    type Output = P2;
    #[inline]
    fn add(self, rhs: P2) -> P2 {
        P2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for P2 {
    type Output = P2;
    #[inline]
    fn sub(self, rhs: P2) -> P2 {
        P2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for P2 {
    type Output = P2;
    #[inline]
    fn mul(self, k: f64) -> P2 {
        P2::new(self.x * k, self.y * k)
    }
}

impl Mul<P2> for f64 {
    type Output = P2;
    #[inline]
    fn mul(self, p: P2) -> P2 {
        p * self
    }
}

impl Div<f64> for P2 {
    type Output = P2;
    #[inline]
    fn div(self, k: f64) -> P2 {
        P2::new(self.x / k, self.y / k)
    }
}

impl Neg for P2 {
    type Output = P2;
    #[inline]
    fn neg(self) -> P2 {
        P2::new(-self.x, -self.y)
    }
}

impl AddAssign for P2 {
    #[inline]
    fn add_assign(&mut self, rhs: P2) {
        *self = *self + rhs;
    }
}

impl SubAssign for P2 {
    #[inline]
    fn sub_assign(&mut self, rhs: P2) {
        *self = *self - rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn distance_is_euclidean() {
        assert_eq!(P2::new(0.0, 0.0).dist(P2::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn angle_roundtrip() {
        for k in -7..=7 {
            let th = k as f64 * PI / 8.0;
            let v = P2::from_angle(th);
            assert!((v.angle() - th).abs() < 1e-12);
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn perp_is_ccw_rotation() {
        let v = P2::new(1.0, 0.0).perp();
        assert!((v.angle() - FRAC_PI_2).abs() < 1e-12);
        assert_eq!(P2::new(1.0, 2.0).dot(P2::new(1.0, 2.0).perp()), 0.0);
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = P2::new(0.0, 0.0);
        let b = P2::new(2.0, 4.0);
        assert_eq!(a.midpoint(b), P2::new(1.0, 2.0));
        assert_eq!(a.lerp(b, 0.25), P2::new(0.5, 1.0));
    }

    proptest! {
        #[test]
        fn prop_triangle_inequality(ax in -10.0..10.0f64, ay in -10.0..10.0f64,
                                    bx in -10.0..10.0f64, by in -10.0..10.0f64,
                                    cx in -10.0..10.0f64, cy in -10.0..10.0f64) {
            let a = P2::new(ax, ay);
            let b = P2::new(bx, by);
            let c = P2::new(cx, cy);
            prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-9);
        }

        #[test]
        fn prop_normalize_is_unit(x in -10.0..10.0f64, y in -10.0..10.0f64) {
            prop_assume!(x.abs() > 1e-6 || y.abs() > 1e-6);
            let n = P2::new(x, y).normalize().norm();
            prop_assert!((n - 1.0).abs() < 1e-12);
        }
    }
}
