//! Double-precision complex numbers.
//!
//! Wireless channels are complex-valued (paper Eq. 1: `h = (A/d)·e^{-ι2πd/λ}`),
//! and every stage of the BLoc pipeline — channel synthesis, phase-offset
//! cancellation (Eq. 10), likelihood correlation (Eq. 17) — is complex
//! arithmetic. This module implements the small, fully-owned complex type
//! used across the workspace instead of pulling in `num-complex`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// The naming follows the convention of DSP codebases: `re + ι·im` with
/// `ι = √−1` (the paper uses `ι` for the imaginary unit).
#[derive(Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity.
pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
/// The multiplicative identity.
pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
/// The imaginary unit ι.
pub const I: C64 = C64 { re: 0.0, im: 1.0 };

impl C64 {
    /// Builds a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Builds a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Builds a complex number from polar form `r·e^{ιθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self::new(r * c, r * s)
    }

    /// The unit phasor `e^{ιθ}`.
    ///
    /// This is the hot primitive of likelihood evaluation (Eq. 17): each grid
    /// cell contributes one phasor per (antenna, band) pair.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self::new(c, s)
    }

    /// Complex conjugate (`(.)*` in the paper).
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (cheaper than [`Self::abs`]; no sqrt).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Principal argument `∠z ∈ (−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Polar decomposition `(|z|, ∠z)`.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.abs(), self.arg())
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value for `z = 0`, mirroring `f64` division.
    #[inline]
    pub fn inv(self) -> Self {
        let n = self.norm_sq();
        Self::new(self.re / n, -self.im / n)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// `z / |z|`; returns zero for the zero vector.
    #[inline]
    pub fn normalize(self) -> Self {
        let a = self.abs();
        if a == 0.0 {
            ZERO
        } else {
            self.scale(1.0 / a)
        }
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-accumulate: `self + a·b`.
    ///
    /// Used in the inner correlation loops to keep the arithmetic explicit.
    #[inline]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        self + a * b
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}i",
            self.re,
            if self.im < 0.0 { "-" } else { "+" },
            self.im.abs()
        )
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for C64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal multiply
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Mul<f64> for C64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl Neg for C64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(ZERO, |acc, z| acc + z)
    }
}

impl<'a> Sum<&'a C64> for C64 {
    fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
        iter.fold(ZERO, |acc, z| acc + *z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    fn cclose(a: C64, b: C64) -> bool {
        close(a.re, b.re) && close(a.im, b.im)
    }

    #[test]
    fn basic_arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert!(cclose(a / a, ONE));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.5, 0.7);
        let (r, t) = z.to_polar();
        assert!(close(r, 2.5));
        assert!(close(t, 0.7));
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..16 {
            let th = k as f64 * PI / 8.0 - PI;
            let z = C64::cis(th);
            assert!(close(z.abs(), 1.0));
        }
    }

    #[test]
    fn conjugate_cancels_phase() {
        // The heart of BLoc's offset cancellation: z·z* is real.
        let z = C64::from_polar(3.0, 1.234);
        let p = z * z.conj();
        assert!(close(p.im, 0.0));
        assert!(close(p.re, 9.0));
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let th = 0.456;
        assert!(cclose((I * th).exp(), C64::cis(th)));
    }

    #[test]
    fn inv_times_self_is_one() {
        let z = C64::new(-0.3, 1.7);
        assert!(cclose(z * z.inv(), ONE));
    }

    #[test]
    fn sum_over_iterator() {
        let v = [C64::new(1.0, 1.0); 10];
        let s: C64 = v.iter().sum();
        assert!(cclose(s, C64::new(10.0, 10.0)));
    }

    #[test]
    fn normalize_zero_is_zero() {
        assert_eq!(ZERO.normalize(), ZERO);
        assert!(close(C64::new(3.0, 4.0).normalize().abs(), 1.0));
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", C64::new(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{}", C64::new(1.0, 2.0)), "1+2i");
    }

    proptest! {
        #[test]
        fn prop_mul_commutes(ar in -1e3..1e3f64, ai in -1e3..1e3f64,
                             br in -1e3..1e3f64, bi in -1e3..1e3f64) {
            let a = C64::new(ar, ai);
            let b = C64::new(br, bi);
            let ab = a * b;
            let ba = b * a;
            prop_assert!((ab.re - ba.re).abs() < 1e-6);
            prop_assert!((ab.im - ba.im).abs() < 1e-6);
        }

        #[test]
        fn prop_abs_is_multiplicative(ar in -1e2..1e2f64, ai in -1e2..1e2f64,
                                      br in -1e2..1e2f64, bi in -1e2..1e2f64) {
            let a = C64::new(ar, ai);
            let b = C64::new(br, bi);
            prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-6);
        }

        #[test]
        fn prop_conj_involution(re in -1e6..1e6f64, im in -1e6..1e6f64) {
            let z = C64::new(re, im);
            prop_assert_eq!(z.conj().conj(), z);
        }

        #[test]
        fn prop_phase_cancellation(r in 0.1..10.0f64,
                                   theta in -std::f64::consts::PI..std::f64::consts::PI,
                                   phi in -std::f64::consts::PI..std::f64::consts::PI) {
            // A phasor rotated by a random offset and multiplied by the
            // conjugate of the same offset recovers the original — the
            // algebraic core of paper Eq. 10.
            let h = C64::from_polar(r, theta);
            let offset = C64::cis(phi);
            let measured = h * offset;
            let corrected = measured * offset.conj();
            prop_assert!((corrected.re - h.re).abs() < 1e-9);
            prop_assert!((corrected.im - h.im).abs() < 1e-9);
        }
    }
}
