//! A small shared parallel executor over `std::thread::scope`.
//!
//! Every CPU-bound fan-out in the workspace — likelihood grid rows, the
//! testbed location sweep, the ablation batteries — used to hand-roll its
//! own `std::thread::scope` sharding. This module centralizes the pattern:
//! deterministic work splitting with no work queue, no channels and no
//! dependencies (consistent with the vendored-shim constraint).
//!
//! Determinism contract: the *assignment* of work items to threads is a
//! pure function of `(n, threads)`, and results are reassembled in item
//! order, so outputs never depend on scheduling. Callers that also want
//! bit-identical floating-point results simply need per-item computations
//! that don't depend on which thread runs them — which every caller in
//! this workspace satisfies.
//!
//! # Telemetry (`par.*`)
//!
//! Each `*_named` entry point is a *region*: one fan-out with a stable
//! name (`likelihood`, `sound.links`, …). While the global
//! [`bloc_obs::Registry`] is enabled, every region records
//!
//! * `par.regions` / `par.chunks` / `par.items` — counters,
//! * `par.region.wall_us`, `par.region.busy_max_us`,
//!   `par.region.threads`, `par.shard.busy_us` — aggregate histograms
//!   across all regions,
//! * `par.<name>.wall_us`, `par.<name>.busy_us` — per-region-name
//!   histograms (one busy sample per shard) so busy-vs-wall can be
//!   compared per call site,
//! * `par.imbalance` and `par.<name>.imbalance` — gauges holding the most
//!   recent region's `(max − min) / max` shard-busy spread (0 = perfectly
//!   balanced, → 1 = one worker did everything).
//!
//! Shard busy time is measured *inside* the worker, so the gap between
//! `wall × threads` and `Σ busy` is exactly the spawn/join + scheduling
//! overhead — the number that makes the inverted thread-scaling of the
//! likelihood kernel diagnosable instead of mysterious. When the global
//! [`bloc_obs::Tracer`] is also enabled, every shard additionally records
//! `par.<name>` begin/end edges on its worker thread, which is what puts
//! worker lanes into the exported Chrome trace.
//!
//! The unnamed entry points ([`map`], [`sharded_map`],
//! [`for_each_chunk_mut`]) report under the reserved region name `other`.
//! The names `region` and `shard` are reserved for the aggregate metrics
//! and must not be used as region names.

use std::time::Instant;

use bloc_obs::{Registry, Tracer};

/// The number of worker threads the host advertises (≥ 1).
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Clamps a requested thread count to what the work can feed.
///
/// `items / min_items_per_shard` bounds how many workers get at least one
/// meaningful shard; below one shard's worth the call runs serial (`1`).
/// This is the fix for the "2 threads slower than 1" benches: spawn +
/// join on a scoped thread costs tens of microseconds, so a shard must
/// carry at least that much arithmetic to pay for itself.
///
/// An explicit request above [`max_threads`] is honored, not clamped —
/// oversubscription is the caller's call (the observability gates rely
/// on a requested `N`-thread round producing `N` worker lanes even on a
/// smaller host).
///
/// Thread-count-*dependent* results are the caller's bug, not this
/// function's: every executor in this module is deterministic per thread
/// count, and the workspace's kernels are bit-identical across counts,
/// so tuning down never changes output.
pub fn tuned_threads(items: usize, requested: usize, min_items_per_shard: usize) -> usize {
    let cap = items / min_items_per_shard.max(1);
    requested.max(1).min(cap.max(1))
}

/// Picks a chunk length (in multiples of `unit`) so a chunked fan-out
/// over `total` elements yields roughly three chunks per worker — enough
/// slack for round-robin balancing without per-chunk overhead dominating.
pub fn auto_chunk_len(total: usize, unit: usize, threads: usize) -> usize {
    let unit = unit.max(1);
    if threads <= 1 {
        return total.max(unit);
    }
    let n_units = total.div_ceil(unit);
    let target_chunks = threads * 3;
    let units_per_chunk = n_units.div_ceil(target_chunks).max(1);
    units_per_chunk * unit
}

/// Region name used by the unnamed entry points.
const UNNAMED: &str = "other";

/// A per-unit-of-work time budget, counted in microseconds.
///
/// Work submitted to a batch (a fleet round, a sweep item) carries a
/// deadline so one slow or stalled unit defers *itself* instead of
/// stalling the batch. Two cost sources feed the same budget:
///
/// * **Charged (virtual) cost** — [`Deadline::charge`] adds declared
///   microseconds: scheduled backoff delays, driver-injected latencies,
///   modelled I/O. Virtual cost is a pure function of the caller's
///   inputs, so deadline verdicts built on it alone are deterministic
///   and bit-identical across runs and thread counts.
/// * **Wall-clock cost** — opt-in via [`Deadline::with_wall_clock`]:
///   elapsed real time since arming also counts. Useful in genuinely
///   latency-bound services, but wall verdicts depend on host load, so
///   replayable soaks leave it off.
///
/// The deadline never interrupts anything: callers poll
/// [`Deadline::exceeded`] at their natural yield points (between retry
/// attempts, before starting expensive phases) and convert an exceeded
/// budget into a typed deferral.
#[derive(Debug, Clone)]
pub struct Deadline {
    budget_us: u64,
    charged_us: u64,
    armed: Option<Instant>,
}

impl Deadline {
    /// A deadline with `budget_us` of budget and no wall-clock
    /// accounting (virtual charges only — fully deterministic).
    pub fn budget(budget_us: u64) -> Self {
        Self {
            budget_us,
            charged_us: 0,
            armed: None,
        }
    }

    /// Also counts wall-clock time elapsed from this call against the
    /// budget (verdicts become host-load-dependent).
    pub fn with_wall_clock(mut self) -> Self {
        self.armed = Some(Instant::now());
        self
    }

    /// Adds `us` of declared (virtual) cost to the spent side.
    pub fn charge(&mut self, us: u64) {
        self.charged_us = self.charged_us.saturating_add(us);
    }

    /// The configured budget, µs.
    pub fn budget_us(&self) -> u64 {
        self.budget_us
    }

    /// Total cost so far: virtual charges plus wall time when armed, µs.
    pub fn spent_us(&self) -> u64 {
        let wall = self.armed.map(elapsed_us).unwrap_or(0);
        self.charged_us.saturating_add(wall)
    }

    /// Budget remaining, µs (0 when exceeded).
    pub fn remaining_us(&self) -> u64 {
        self.budget_us.saturating_sub(self.spent_us())
    }

    /// True once the spent cost exceeds the budget.
    pub fn exceeded(&self) -> bool {
        self.spent_us() > self.budget_us
    }
}

fn elapsed_us(start: Instant) -> u64 {
    start.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// One instrumented fan-out. `open` is `None` while the global registry
/// is disabled, collapsing every telemetry touch to a branch.
struct Region {
    name: &'static str,
    /// Interned `par.<name>` trace id when the tracer is recording.
    trace_id: Option<u32>,
    start: Instant,
}

impl Region {
    fn open(name: &'static str) -> Option<Region> {
        if !Registry::global().is_enabled() {
            return None;
        }
        let trace_id = Tracer::global().intern(&format!("par.{name}"));
        Some(Region {
            name,
            trace_id,
            start: Instant::now(),
        })
    }

    /// Records the region's metrics; `busy_us` holds one entry per shard
    /// that actually ran, `items` go to the `items_counter` counter
    /// (`par.chunks` or `par.items`).
    fn close(self, threads: usize, busy_us: &[u64], items: u64, items_counter: &'static str) {
        let wall_us = elapsed_us(self.start);
        let reg = Registry::global();
        reg.counter("par.regions").inc();
        reg.counter(items_counter).add(items);
        reg.histogram("par.region.threads").record(threads as u64);
        reg.histogram("par.region.wall_us").record(wall_us);
        reg.histogram(&format!("par.{}.wall_us", self.name))
            .record(wall_us);
        let shard_busy = reg.histogram("par.shard.busy_us");
        let named_busy = reg.histogram(&format!("par.{}.busy_us", self.name));
        for &b in busy_us {
            shard_busy.record(b);
            named_busy.record(b);
        }
        let max = busy_us.iter().copied().max().unwrap_or(0);
        let min = busy_us.iter().copied().min().unwrap_or(0);
        reg.histogram("par.region.busy_max_us").record(max);
        let imbalance = if max > 0 {
            (max - min) as f64 / max as f64
        } else {
            0.0
        };
        reg.gauge("par.imbalance").set(imbalance);
        reg.gauge(&format!("par.{}.imbalance", self.name))
            .set(imbalance);
    }
}

/// Runs one shard's body between trace edges, returning `(result, busy µs)`.
fn timed_shard<R>(trace_id: Option<u32>, body: impl FnOnce() -> R) -> (R, u64) {
    if let Some(id) = trace_id {
        Tracer::global().begin_id(id);
    }
    let start = Instant::now();
    let out = body();
    let busy = elapsed_us(start);
    if let Some(id) = trace_id {
        Tracer::global().end(id);
    }
    (out, busy)
}

/// [`for_each_chunk_mut`] with a region name for the `par.*` telemetry.
///
/// Splits `data` into contiguous chunks of `chunk_len` elements and applies
/// `f(start_offset, chunk)` to every chunk, distributing chunks round-robin
/// across `threads` scoped threads.
///
/// With `threads <= 1` (or a single chunk) everything runs inline on the
/// caller's thread — no spawn overhead, and the zero-thread case needs no
/// special handling at call sites.
pub fn for_each_chunk_mut_named<T, F>(
    name: &'static str,
    data: &mut [T],
    chunk_len: usize,
    threads: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = threads.max(1).min(n_chunks.max(1));
    let region = Region::open(name);
    let trace_id = region.as_ref().and_then(|r| r.trace_id);
    if threads == 1 {
        let ((), busy) = timed_shard(trace_id, || {
            for (k, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(k * chunk_len, chunk);
            }
        });
        if let Some(region) = region {
            region.close(1, &[busy], n_chunks as u64, "par.chunks");
        }
        return;
    }
    let mut per_thread: Vec<Vec<(usize, &mut [T])>> = (0..threads).map(|_| Vec::new()).collect();
    for (k, chunk) in data.chunks_mut(chunk_len).enumerate() {
        per_thread[k % threads].push((k * chunk_len, chunk));
    }
    let busy: Vec<u64> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = per_thread
            .into_iter()
            .map(|work| {
                scope.spawn(move || {
                    let ((), busy) = timed_shard(trace_id, || {
                        for (start, chunk) in work {
                            f(start, chunk);
                        }
                    });
                    busy
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(b) => b,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    });
    if let Some(region) = region {
        region.close(threads, &busy, n_chunks as u64, "par.chunks");
    }
}

/// Splits `data` into contiguous chunks and applies `f` to each across
/// `threads` scoped threads; telemetry lands under the `other` region
/// (see [`for_each_chunk_mut_named`]).
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    for_each_chunk_mut_named(UNNAMED, data, chunk_len, threads, f)
}

/// [`sharded_map`] with a region name for the `par.*` telemetry.
///
/// Evaluates `work` for every index in `0..n` across `threads` scoped
/// threads, returning the results in index order.
///
/// Each worker owns a private state built by `init(worker_index)` — a
/// sounder, a local stats accumulator, a scratch buffer — threaded through
/// its `work` calls and handed to `fini` when the worker's share is done
/// (the merge-at-join point). Items are sharded by stride (worker `t`
/// takes `t, t+threads, …`), so the item→worker mapping is deterministic.
///
/// A panic in any worker is resumed on the calling thread after the scope
/// joins, matching the behaviour of the hand-rolled sharding blocks this
/// replaces.
pub fn sharded_map_named<S, T, I, W, F>(
    name: &'static str,
    n: usize,
    threads: usize,
    init: I,
    work: W,
    fini: F,
) -> Vec<T>
where
    T: Send,
    I: Fn(usize) -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
    F: Fn(S) + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    let region = Region::open(name);
    let trace_id = region.as_ref().and_then(|r| r.trace_id);
    if threads == 1 {
        let (out, busy) = timed_shard(trace_id, || {
            let mut state = init(0);
            let out: Vec<T> = (0..n).map(|i| work(&mut state, i)).collect();
            fini(state);
            out
        });
        if let Some(region) = region {
            region.close(1, &[busy], n as u64, "par.items");
        }
        return out;
    }
    let shards: Vec<(Vec<T>, u64)> = std::thread::scope(|scope| {
        let (init, work, fini) = (&init, &work, &fini);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    timed_shard(trace_id, || {
                        let mut state = init(t);
                        let out: Vec<T> = (t..n)
                            .step_by(threads)
                            .map(|i| work(&mut state, i))
                            .collect();
                        fini(state);
                        out
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    });
    if let Some(region) = region {
        let busy: Vec<u64> = shards.iter().map(|(_, b)| *b).collect();
        region.close(threads, &busy, n as u64, "par.items");
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for (t, (shard, _)) in shards.into_iter().enumerate() {
        for (k, item) in shard.into_iter().enumerate() {
            out[t + k * threads] = Some(item);
        }
    }
    debug_assert!(out.iter().all(Option::is_some));
    out.into_iter().flatten().collect()
}

/// Evaluates `work` for every index in `0..n` across `threads` scoped
/// threads with per-worker state; telemetry lands under the `other`
/// region (see [`sharded_map_named`]).
pub fn sharded_map<S, T, I, W, F>(n: usize, threads: usize, init: I, work: W, fini: F) -> Vec<T>
where
    T: Send,
    I: Fn(usize) -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
    F: Fn(S) + Sync,
{
    sharded_map_named(UNNAMED, n, threads, init, work, fini)
}

/// Stateless [`sharded_map_named`]: maps `f` over `0..n` in parallel,
/// results in index order, telemetry under `par.<name>.*`.
pub fn map_named<T, F>(name: &'static str, n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    sharded_map_named(name, n, threads, |_| (), |(), i| f(i), |()| ())
}

/// Stateless [`sharded_map`]: maps `f` over `0..n` in parallel, results in
/// index order.
pub fn map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_named(UNNAMED, n, threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn tuned_threads_falls_back_to_serial_below_threshold() {
        // 100 items at ≥1000 per shard: not worth one spawn.
        assert_eq!(tuned_threads(100, 8, 1000), 1);
        // Exactly two shards' worth caps at two workers.
        assert_eq!(
            tuned_threads(2000, 8, 1000).min(2),
            tuned_threads(2000, 8, 1000)
        );
        assert!(tuned_threads(2000, 8, 1000) <= 2);
        // Zero items still returns a valid serial count.
        assert_eq!(tuned_threads(0, 4, 64), 1);
        // A zero threshold must not divide by zero.
        assert!(tuned_threads(10, 4, 0) >= 1);
        // Never exceeds the request; an explicit request above the host
        // core count is honored (oversubscription is the caller's call).
        assert!(tuned_threads(usize::MAX / 2, 3, 1) <= 3);
        assert_eq!(tuned_threads(usize::MAX / 2, 64, 1), 64);
    }

    #[test]
    fn deadline_virtual_charges_are_deterministic() {
        let mut d = Deadline::budget(1_000);
        assert!(!d.exceeded());
        assert_eq!(d.remaining_us(), 1_000);
        d.charge(400);
        d.charge(600);
        // Exactly at the budget is not exceeded (the budget is the
        // allowance, not the wall).
        assert!(!d.exceeded());
        assert_eq!(d.spent_us(), 1_000);
        d.charge(1);
        assert!(d.exceeded());
        assert_eq!(d.remaining_us(), 0);
        // Saturation, not overflow.
        d.charge(u64::MAX);
        assert!(d.exceeded());
    }

    #[test]
    fn deadline_wall_clock_is_opt_in() {
        // Without arming, sleeping costs nothing.
        let d = Deadline::budget(1);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(!d.exceeded());
        // Armed, real time counts.
        let d = Deadline::budget(1).with_wall_clock();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(d.exceeded());
    }

    #[test]
    fn auto_chunk_len_respects_unit_and_covers_total() {
        for (total, unit, threads) in [(6600, 66, 4), (100, 10, 1), (7, 3, 2), (0, 5, 4)] {
            let len = auto_chunk_len(total, unit, threads);
            assert!(len >= unit.min(len.max(1)));
            assert_eq!(len % unit, 0, "chunk len {len} not a multiple of {unit}");
            if threads > 1 && total > 0 {
                let chunks = total.div_ceil(len);
                assert!(chunks <= threads * 3 + threads, "too many chunks: {chunks}");
            }
        }
        // Serial calls get one chunk.
        assert!(auto_chunk_len(500, 10, 1) >= 500);
    }

    #[test]
    fn map_preserves_index_order() {
        for threads in [1, 2, 3, 7] {
            let out = map(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_tiny() {
        assert!(map(0, 4, |i| i).is_empty());
        assert_eq!(map(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn chunks_cover_every_element_exactly_once() {
        for threads in [1, 2, 5] {
            let mut data = vec![0u32; 103];
            for_each_chunk_mut(&mut data, 10, threads, |start, chunk| {
                for (off, v) in chunk.iter_mut().enumerate() {
                    *v += (start + off) as u32 + 1;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(
                    *v,
                    i as u32 + 1,
                    "element {i} touched wrong number of times"
                );
            }
        }
    }

    #[test]
    fn chunk_starts_match_offsets() {
        let mut data = vec![0usize; 25];
        for_each_chunk_mut(&mut data, 4, 3, |start, chunk| {
            assert!(chunk.len() <= 4);
            assert_eq!(start % 4, 0);
            for v in chunk.iter_mut() {
                *v = start;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i / 4) * 4);
        }
    }

    #[test]
    fn sharded_state_init_and_fini_run_per_worker() {
        let inits = AtomicUsize::new(0);
        let finis = AtomicUsize::new(0);
        let out = sharded_map(
            10,
            3,
            |t| {
                inits.fetch_add(1, Ordering::SeqCst);
                t
            },
            |state, i| (*state, i),
            |_| {
                finis.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(inits.load(Ordering::SeqCst), 3);
        assert_eq!(finis.load(Ordering::SeqCst), 3);
        // Strided assignment: item i ran on worker i % 3.
        for (i, (t, idx)) in out.into_iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(t, i % 3);
        }
    }

    #[test]
    fn results_are_thread_count_independent() {
        let reference = map(57, 1, |i| (i as f64 * 0.37).sin());
        for threads in [2, 4, 9] {
            assert_eq!(map(57, threads, |i| (i as f64 * 0.37).sin()), reference);
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            map(8, 2, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err());
    }

    /// Serializes the tests that read (or toggle) the global registry so
    /// a concurrently running disable can't void a sibling's metrics.
    fn telemetry_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Named regions must account their items, shard busy samples and
    /// wall time under `par.<name>.*` on the global registry, with one
    /// busy sample per shard that ran.
    #[test]
    fn named_region_records_par_metrics() {
        let _serial = telemetry_lock();
        let reg = Registry::global();
        let before = reg.snapshot();
        let out = map_named("par-selftest", 64, 4, |i| {
            // Enough work per item that busy time is nonzero on every shard.
            (0..400u64).fold(i as u64, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        });
        assert_eq!(out.len(), 64);
        let delta = reg.snapshot().diff(&before);
        assert!(delta.counters["par.regions"] >= 1);
        assert!(delta.counters["par.items"] >= 64);
        let wall = &delta.histograms["par.par-selftest.wall_us"];
        assert_eq!(wall.count, 1);
        let busy = &delta.histograms["par.par-selftest.busy_us"];
        assert_eq!(busy.count, 4, "one busy sample per shard");
        // Busy is measured inside the workers: it can never exceed the
        // region wall per shard, so Σ busy ≤ wall × shards.
        assert!(busy.sum <= wall.sum * 4 + 4); // +4 for µs rounding
    }

    /// The single-thread inline path is a region too: one shard whose
    /// busy time equals (up to clock granularity) the region wall.
    #[test]
    fn inline_region_counts_one_shard() {
        let _serial = telemetry_lock();
        let reg = Registry::global();
        let before = reg.snapshot();
        let mut data = vec![1u64; 500];
        for_each_chunk_mut_named("par-selftest-inline", &mut data, 64, 1, |_, chunk| {
            for v in chunk.iter_mut() {
                *v = v.wrapping_mul(3);
            }
        });
        let delta = reg.snapshot().diff(&before);
        assert!(delta.counters["par.chunks"] >= 8);
        assert_eq!(delta.histograms["par.par-selftest-inline.busy_us"].count, 1);
    }

    /// With the global registry disabled, a named region records nothing.
    #[test]
    fn disabled_registry_skips_par_metrics() {
        let _serial = telemetry_lock();
        let reg = Registry::global();
        reg.set_enabled(false);
        let out = map_named("par-selftest-off", 16, 2, |i| i + 1);
        reg.set_enabled(true);
        assert_eq!(out[15], 16);
        let snap = reg.snapshot();
        assert!(!snap.histograms.contains_key("par.par-selftest-off.wall_us"));
        assert!(!snap.histograms.contains_key("par.par-selftest-off.busy_us"));
    }
}
