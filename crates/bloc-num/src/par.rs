//! A small shared parallel executor over `std::thread::scope`.
//!
//! Every CPU-bound fan-out in the workspace — likelihood grid rows, the
//! testbed location sweep, the ablation batteries — used to hand-roll its
//! own `std::thread::scope` sharding. This module centralizes the pattern:
//! deterministic work splitting with no work queue, no channels and no
//! dependencies (consistent with the vendored-shim constraint).
//!
//! Determinism contract: the *assignment* of work items to threads is a
//! pure function of `(n, threads)`, and results are reassembled in item
//! order, so outputs never depend on scheduling. Callers that also want
//! bit-identical floating-point results simply need per-item computations
//! that don't depend on which thread runs them — which every caller in
//! this workspace satisfies.

/// The number of worker threads the host advertises (≥ 1).
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Splits `data` into contiguous chunks of `chunk_len` elements and applies
/// `f(start_offset, chunk)` to every chunk, distributing chunks round-robin
/// across `threads` scoped threads.
///
/// With `threads <= 1` (or a single chunk) everything runs inline on the
/// caller's thread — no spawn overhead, and the zero-thread case needs no
/// special handling at call sites.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = threads.max(1).min(n_chunks.max(1));
    if threads == 1 {
        for (k, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(k * chunk_len, chunk);
        }
        return;
    }
    let mut per_thread: Vec<Vec<(usize, &mut [T])>> = (0..threads).map(|_| Vec::new()).collect();
    for (k, chunk) in data.chunks_mut(chunk_len).enumerate() {
        per_thread[k % threads].push((k * chunk_len, chunk));
    }
    std::thread::scope(|scope| {
        let f = &f;
        for work in per_thread {
            scope.spawn(move || {
                for (start, chunk) in work {
                    f(start, chunk);
                }
            });
        }
    });
}

/// Evaluates `work` for every index in `0..n` across `threads` scoped
/// threads, returning the results in index order.
///
/// Each worker owns a private state built by `init(worker_index)` — a
/// sounder, a local stats accumulator, a scratch buffer — threaded through
/// its `work` calls and handed to `fini` when the worker's share is done
/// (the merge-at-join point). Items are sharded by stride (worker `t`
/// takes `t, t+threads, …`), so the item→worker mapping is deterministic.
///
/// A panic in any worker is resumed on the calling thread after the scope
/// joins, matching the behaviour of the hand-rolled sharding blocks this
/// replaces.
pub fn sharded_map<S, T, I, W, F>(n: usize, threads: usize, init: I, work: W, fini: F) -> Vec<T>
where
    T: Send,
    I: Fn(usize) -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
    F: Fn(S) + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        let mut state = init(0);
        let out: Vec<T> = (0..n).map(|i| work(&mut state, i)).collect();
        fini(state);
        return out;
    }
    let shards: Vec<Vec<T>> = std::thread::scope(|scope| {
        let (init, work, fini) = (&init, &work, &fini);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut state = init(t);
                    let out: Vec<T> = (t..n)
                        .step_by(threads)
                        .map(|i| work(&mut state, i))
                        .collect();
                    fini(state);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    });
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for (t, shard) in shards.into_iter().enumerate() {
        for (k, item) in shard.into_iter().enumerate() {
            out[t + k * threads] = Some(item);
        }
    }
    debug_assert!(out.iter().all(Option::is_some));
    out.into_iter().flatten().collect()
}

/// Stateless [`sharded_map`]: maps `f` over `0..n` in parallel, results in
/// index order.
pub fn map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    sharded_map(n, threads, |_| (), |(), i| f(i), |()| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_index_order() {
        for threads in [1, 2, 3, 7] {
            let out = map(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_tiny() {
        assert!(map(0, 4, |i| i).is_empty());
        assert_eq!(map(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn chunks_cover_every_element_exactly_once() {
        for threads in [1, 2, 5] {
            let mut data = vec![0u32; 103];
            for_each_chunk_mut(&mut data, 10, threads, |start, chunk| {
                for (off, v) in chunk.iter_mut().enumerate() {
                    *v += (start + off) as u32 + 1;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(
                    *v,
                    i as u32 + 1,
                    "element {i} touched wrong number of times"
                );
            }
        }
    }

    #[test]
    fn chunk_starts_match_offsets() {
        let mut data = vec![0usize; 25];
        for_each_chunk_mut(&mut data, 4, 3, |start, chunk| {
            assert!(chunk.len() <= 4);
            assert_eq!(start % 4, 0);
            for v in chunk.iter_mut() {
                *v = start;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i / 4) * 4);
        }
    }

    #[test]
    fn sharded_state_init_and_fini_run_per_worker() {
        let inits = AtomicUsize::new(0);
        let finis = AtomicUsize::new(0);
        let out = sharded_map(
            10,
            3,
            |t| {
                inits.fetch_add(1, Ordering::SeqCst);
                t
            },
            |state, i| (*state, i),
            |_| {
                finis.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(inits.load(Ordering::SeqCst), 3);
        assert_eq!(finis.load(Ordering::SeqCst), 3);
        // Strided assignment: item i ran on worker i % 3.
        for (i, (t, idx)) in out.into_iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(t, i % 3);
        }
    }

    #[test]
    fn results_are_thread_count_independent() {
        let reference = map(57, 1, |i| (i as f64 * 0.37).sin());
        for threads in [2, 4, 9] {
            assert_eq!(map(57, threads, |i| (i as f64 * 0.37).sin()), reference);
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            map(8, 2, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}
