//! A radix-2 decimation-in-time FFT.
//!
//! The localization pipeline itself never needs an FFT (Eqs. 15–17 are
//! direct matched-filter correlations over a handful of antennas and bands),
//! but the GFSK PHY does: spectral sanity checks of the modulator (the
//! Gaussian filter must suppress out-of-band energy, paper §4) and
//! instantaneous-frequency diagnostics. Power-of-two sizes only; callers
//! zero-pad.

use crate::complex::{C64, ZERO};

/// In-place forward FFT. `x.len()` must be a power of two (1 is allowed).
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fft_in_place(x: &mut [C64]) {
    transform(x, false);
}

/// In-place inverse FFT (including the 1/N normalization).
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn ifft_in_place(x: &mut [C64]) {
    transform(x, true);
    let n = x.len() as f64;
    for v in x.iter_mut() {
        *v = *v / n;
    }
}

/// Convenience: forward FFT of a slice into a new vector.
pub fn fft(x: &[C64]) -> Vec<C64> {
    let mut v = x.to_vec();
    fft_in_place(&mut v);
    v
}

/// Convenience: inverse FFT of a slice into a new vector.
pub fn ifft(x: &[C64]) -> Vec<C64> {
    let mut v = x.to_vec();
    ifft_in_place(&mut v);
    v
}

/// Power spectrum `|X_k|²` of a signal, zero-padded to the next power of
/// two of at least `min_len`.
pub fn power_spectrum(x: &[C64], min_len: usize) -> Vec<f64> {
    let n = x.len().max(min_len).max(1).next_power_of_two();
    let mut v = vec![ZERO; n];
    v[..x.len()].copy_from_slice(x);
    fft_in_place(&mut v);
    v.into_iter().map(|z| z.norm_sq()).collect()
}

fn transform(x: &mut [C64], inverse: bool) {
    let n = x.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            x.swap(i, j);
        }
    }

    // Iterative butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = C64::cis(ang);
        for chunk in x.chunks_mut(len) {
            let mut w = C64::new(1.0, 0.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn impulse_transforms_to_flat() {
        let mut x = vec![ZERO; 8];
        x[0] = C64::real(1.0);
        fft_in_place(&mut x);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k = 5;
        let x: Vec<C64> = (0..n)
            .map(|i| C64::cis(2.0 * PI * k as f64 * i as f64 / n as f64))
            .collect();
        let spec = fft(&x);
        for (i, z) in spec.iter().enumerate() {
            if i == k {
                assert!((z.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "bin {i} leaked {}", z.abs());
            }
        }
    }

    #[test]
    fn parseval_holds() {
        let x: Vec<C64> = (0..32)
            .map(|i| C64::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let spec = fft(&x);
        let t: f64 = x.iter().map(|z| z.norm_sq()).sum();
        let f: f64 = spec.iter().map(|z| z.norm_sq()).sum::<f64>() / 32.0;
        assert!((t - f).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![ZERO; 6];
        fft_in_place(&mut x);
    }

    #[test]
    fn length_one_is_identity() {
        let mut x = vec![C64::new(3.0, -2.0)];
        fft_in_place(&mut x);
        assert_eq!(x[0], C64::new(3.0, -2.0));
    }

    #[test]
    fn power_spectrum_pads() {
        let x = vec![C64::real(1.0); 5];
        let ps = power_spectrum(&x, 16);
        assert_eq!(ps.len(), 16);
    }

    proptest! {
        #[test]
        fn prop_fft_roundtrip(res in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..65)) {
            let n = res.len().next_power_of_two();
            let mut x: Vec<C64> = res.iter().map(|&(r, i)| C64::new(r, i)).collect();
            x.resize(n, ZERO);
            let orig = x.clone();
            fft_in_place(&mut x);
            ifft_in_place(&mut x);
            for (a, b) in x.iter().zip(&orig) {
                prop_assert!((a.re - b.re).abs() < 1e-9);
                prop_assert!((a.im - b.im).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_fft_linearity(
            xs in proptest::collection::vec((-5.0..5.0f64, -5.0..5.0f64), 16),
            ys in proptest::collection::vec((-5.0..5.0f64, -5.0..5.0f64), 16),
            a in -3.0..3.0f64,
        ) {
            let x: Vec<C64> = xs.iter().map(|&(r, i)| C64::new(r, i)).collect();
            let y: Vec<C64> = ys.iter().map(|&(r, i)| C64::new(r, i)).collect();
            let combo: Vec<C64> = x.iter().zip(&y).map(|(&u, &v)| u * a + v).collect();
            let lhs = fft(&combo);
            let fx = fft(&x);
            let fy = fft(&y);
            for k in 0..16 {
                let rhs = fx[k] * a + fy[k];
                prop_assert!((lhs[k] - rhs).abs() < 1e-8);
            }
        }
    }
}
