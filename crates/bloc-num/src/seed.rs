//! Deterministic seed derivation — every stream of "randomness" in the
//! workspace is a pure hash, never hidden RNG state.
//!
//! The fault plan, the retry jitter, and the fleet layer all need
//! *replayable* randomness: any (site, tag, round, attempt) coordinate
//! must be reconstructible in isolation — for a solo-baseline replay, a
//! bisecting rerun, or a bit-identity check across executor thread
//! counts. The discipline, shared by `bloc_chan::faults` and
//! `bloc_core::runtime`, is to derive every stream by hashing its
//! coordinates with [`splitmix64`] and feed the result to a seeded
//! generator (or use the hash bits directly). This module is the one
//! home for those helpers so the constants cannot drift apart.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

/// Golden-ratio increment used to decorrelate coordinate axes before
/// finalizing (the canonical splitmix64 gamma).
pub const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Second odd multiplier for a further independent axis (shared with the
/// retry jitter's attempt axis).
pub const GAMMA2: u64 = 0xA24B_AED4_963E_E407;

/// Third odd multiplier (round axis of [`stream_seed`]).
pub const GAMMA3: u64 = 0xD6E8_FEB8_6659_FD93;

/// The splitmix64 finalizer: a high-quality 64-bit mix whose output is a
/// pure function of its input. Identical to the hash used by
/// `bloc_chan::faults::FaultPlan` and the runtime's retry jitter.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(GAMMA);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The seed of one (site, tag, round) stream under a base seed: a pure
/// hash, so fleet runs are replayable coordinate-by-coordinate and
/// bit-identical across executor thread counts. Each axis is spread by
/// its own odd constant before mixing, so neighbouring coordinates land
/// in unrelated streams.
pub fn stream_seed(base: u64, site: u64, tag: u64, round: u64) -> u64 {
    splitmix64(
        base ^ site.wrapping_mul(GAMMA) ^ tag.wrapping_mul(GAMMA2) ^ round.wrapping_mul(GAMMA3),
    )
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // splitmix64(seed = 0) first output, per the reference
        // implementation (Steele/Lea/Flood).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn stream_seed_is_pure_and_axis_sensitive() {
        let s = stream_seed(42, 1, 2, 3);
        assert_eq!(s, stream_seed(42, 1, 2, 3));
        // Every axis matters, including swapping values across axes.
        assert_ne!(s, stream_seed(43, 1, 2, 3));
        assert_ne!(s, stream_seed(42, 2, 1, 3));
        assert_ne!(s, stream_seed(42, 1, 3, 2));
        assert_ne!(s, stream_seed(42, 1, 2, 4));
    }

    #[test]
    fn neighbouring_streams_do_not_collide() {
        let mut seen = std::collections::HashSet::new();
        for site in 0..4u64 {
            for tag in 0..64u64 {
                for round in 0..16u64 {
                    assert!(seen.insert(stream_seed(7, site, tag, round)));
                }
            }
        }
    }
}
